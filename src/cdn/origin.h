// Origin (CDN customer infrastructure) model. Uncacheable requests and cache
// misses "propagate from the edge server through the CDN to origin content
// servers" (§4); the origin resolves object specs and charges a latency that
// the delivery metrics expose, so caching/prefetching improvements are
// visible end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "faults/plan.h"
#include "workload/catalog.h"

namespace jsoncdn::cdn {

struct OriginResult {
  const workload::ObjectSpec* object = nullptr;  // nullptr => 404
  double latency_seconds = 0.0;
  std::uint64_t bytes = 0;
  // Health of the interaction. A healthy resolve is 200 (or 404 when the
  // object is unknown); an injected fault surfaces as a 5xx, a hung
  // connection (timed_out — latency is then the round trip already spent;
  // the edge charges its own timeout budget), or a truncated body (200 on
  // the wire but unusable).
  int status = 200;
  bool timed_out = false;
  bool truncated = false;

  [[nodiscard]] bool failed() const noexcept {
    return timed_out || truncated || status >= 500;
  }
};

struct OriginParams {
  double rtt_seconds = 0.080;            // edge <-> origin round trip
  double bandwidth_bytes_per_s = 5e6;    // transfer rate for the body
  double processing_seconds = 0.005;     // request handling at origin
};

class Origin {
 public:
  Origin(const workload::ObjectCatalog& catalog, const OriginParams& params);

  // Optional fault injection: every fetch/revalidate consults the plan
  // (keyed by the object's domain). The plan outlives the origin; nullptr
  // or a disabled plan leaves behaviour exactly as before.
  void set_fault_plan(faults::FaultPlan* plan) noexcept { faults_ = plan; }

  // Resolves `url` at simulation time `now`; 404s still cost a round trip.
  [[nodiscard]] OriginResult fetch(std::string_view url,
                                   double now = 0.0) const;

  // Metadata lookup only — what the edge already knows about an object it
  // holds (or once held). No request is made; no cost is charged.
  [[nodiscard]] const workload::ObjectSpec* describe(
      std::string_view url) const {
    return catalog_.find(url);
  }

  // Conditional request (If-None-Match): validates the cached copy without
  // transferring the body. Objects in this simulator are immutable, so a
  // revalidation of an existing object always answers 304 — the cost is one
  // round trip plus processing, no transfer. Faults apply here too: a down
  // origin cannot answer 304 either.
  [[nodiscard]] OriginResult revalidate(std::string_view url,
                                        double now = 0.0) const;

  [[nodiscard]] std::uint64_t fetch_count() const noexcept { return fetches_; }
  [[nodiscard]] std::uint64_t bytes_served() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faulted_;
  }
  [[nodiscard]] const OriginParams& params() const noexcept { return params_; }

 private:
  // Applies the fault plan's decision for this interaction to `result`.
  void apply_faults(OriginResult& result, std::string_view url,
                    double now) const;

  const workload::ObjectCatalog& catalog_;
  OriginParams params_;
  faults::FaultPlan* faults_ = nullptr;  // not owned; may be nullptr
  mutable std::uint64_t fetches_ = 0;
  mutable std::uint64_t bytes_ = 0;
  mutable std::uint64_t faulted_ = 0;
};

}  // namespace jsoncdn::cdn
