#include "http/message.h"

#include <gtest/gtest.h>

namespace jsoncdn::http {
namespace {

TEST(Status, CodesAndClassification) {
  EXPECT_EQ(code(Status::kOk), 200);
  EXPECT_EQ(code(Status::kNotModified), 304);
  EXPECT_EQ(code(Status::kNotFound), 404);
  EXPECT_EQ(code(Status::kOriginTimeout), 504);
  EXPECT_TRUE(is_success(Status::kOk));
  EXPECT_FALSE(is_success(Status::kNotModified));
  EXPECT_FALSE(is_success(Status::kNotFound));
  EXPECT_FALSE(is_success(Status::kInternalError));
}

TEST(Request, DefaultsAreSane) {
  Request request;
  EXPECT_EQ(request.method, Method::kGet);
  EXPECT_TRUE(request.url.empty());
  EXPECT_EQ(request.body_bytes, 0u);
  EXPECT_TRUE(request.headers.empty());
}

TEST(Request, CarriesHeaders) {
  Request request;
  request.headers.set("User-Agent", "TestApp/1.0");
  request.headers.set("Accept", "application/json");
  EXPECT_EQ(request.headers.get("user-agent"), "TestApp/1.0");
  EXPECT_EQ(request.headers.size(), 2u);
}

TEST(Response, DefaultsAreSane) {
  Response response;
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.body_bytes, 0u);
}

}  // namespace
}  // namespace jsoncdn::http
