#include "cdn/metrics.h"

#include <sstream>

namespace jsoncdn::cdn {

void ResilienceMetrics::merge(const ResilienceMetrics& other) {
  origin_errors += other.origin_errors;
  timeouts += other.timeouts;
  truncated_bodies += other.truncated_bodies;
  retries += other.retries;
  retry_successes += other.retry_successes;
  stale_served += other.stale_served;
  negative_cache_hits += other.negative_cache_hits;
  breaker_short_circuits += other.breaker_short_circuits;
  breaker_trips += other.breaker_trips;
  error_responses += other.error_responses;
  backoff_seconds += other.backoff_seconds;
  shed_queue_full += other.shed_queue_full;
  shed_overload += other.shed_overload;
  throttled += other.throttled;
  queue_wait_seconds += other.queue_wait_seconds;
}

bool ResilienceMetrics::any_activity() const noexcept {
  return origin_errors != 0 || timeouts != 0 || truncated_bodies != 0 ||
         retries != 0 || stale_served != 0 || negative_cache_hits != 0 ||
         breaker_short_circuits != 0 || breaker_trips != 0 ||
         error_responses != 0 || rejected() != 0 ||
         queue_wait_seconds != 0.0;
}

std::string render_resilience(const ResilienceMetrics& m) {
  std::ostringstream out;
  out << "Resilience (origin faults absorbed at the edge)\n";
  out << "  failed origin attempts: " << m.origin_errors << " ("
      << m.timeouts << " timeouts, " << m.truncated_bodies
      << " truncated bodies)\n";
  out << "  retries: " << m.retries << " issued, " << m.retry_successes
      << " requests rescued, " << m.backoff_seconds
      << " s simulated backoff\n";
  out << "  stale-if-error responses: " << m.stale_served
      << "   negative-cache hits: " << m.negative_cache_hits << "\n";
  out << "  circuit breaker: " << m.breaker_trips << " trips, "
      << m.breaker_short_circuits << " short-circuited requests\n";
  out << "  error responses to clients: " << m.error_responses << "\n";
  if (m.rejected() != 0 || m.queue_wait_seconds != 0.0) {
    out << "  overload protection: " << m.shed_queue_full
        << " shed (queue full), " << m.shed_overload << " shed (overload), "
        << m.throttled << " throttled\n";
    out << "  simulated worker-queue wait: " << m.queue_wait_seconds
        << " s total\n";
  }
  return out.str();
}

double ClassDelivery::hit_ratio() const noexcept {
  return served == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(served);
}

double ClassDelivery::rejected_share() const noexcept {
  return requests == 0 ? 0.0
                       : static_cast<double>(shed + throttled) /
                             static_cast<double>(requests);
}

stats::Summary ClassDelivery::latency_summary() const {
  return stats::summarize(latencies);
}

void ClassDelivery::merge(const ClassDelivery& other) {
  requests += other.requests;
  hits += other.hits;
  served += other.served;
  shed += other.shed;
  throttled += other.throttled;
  latencies.insert(latencies.end(), other.latencies.begin(),
                   other.latencies.end());
}

void TwoClassDelivery::merge(const TwoClassDelivery& other) {
  human.merge(other.human);
  machine.merge(other.machine);
}

std::string render_two_class(const TwoClassDelivery& d) {
  std::ostringstream out;
  out << "Two-class delivery (overload capacity model)\n";
  const auto row = [&](const char* name, const ClassDelivery& c) {
    const auto summary = c.latency_summary();
    out << "  " << name << ": " << c.requests << " requests, " << c.shed
        << " shed, " << c.throttled << " throttled, hit ratio "
        << c.hit_ratio() << ", served p50 " << summary.p50 << " s, p99 "
        << summary.p99 << " s\n";
  };
  row("human  ", d.human);
  row("machine", d.machine);
  return out.str();
}

void DeliveryMetrics::record(bool cacheable, bool hit, std::uint64_t bytes,
                             double latency_seconds) {
  ++requests_;
  bytes_ += bytes;
  latencies_.push_back(latency_seconds);
  if (!cacheable) {
    ++uncacheable_;
  } else if (hit) {
    ++hits_;
  } else {
    ++misses_;
  }
}

void DeliveryMetrics::record_error(double latency_seconds) {
  ++requests_;
  ++errors_;
  latencies_.push_back(latency_seconds);
}

void DeliveryMetrics::record_rejected() {
  ++requests_;
  ++rejected_;
}

void DeliveryMetrics::record_prefetch(std::uint64_t bytes) {
  ++prefetches_;
  prefetch_bytes_ += bytes;
}

void DeliveryMetrics::mark_prefetch_useful() { ++useful_prefetches_; }

void DeliveryMetrics::record_push(std::uint64_t bytes) {
  ++pushes_;
  push_bytes_ += bytes;
}

void DeliveryMetrics::mark_push_used() { ++pushes_used_; }

void DeliveryMetrics::mark_refresh_hit() { ++refresh_hits_; }

double DeliveryMetrics::push_waste() const noexcept {
  return pushes_ == 0 ? 0.0
                      : 1.0 - static_cast<double>(pushes_used_) /
                                  static_cast<double>(pushes_);
}

double DeliveryMetrics::cacheable_hit_ratio() const noexcept {
  const auto cacheable = hits_ + misses_;
  return cacheable == 0 ? 0.0 : static_cast<double>(hits_) /
                                    static_cast<double>(cacheable);
}

double DeliveryMetrics::overall_hit_ratio() const noexcept {
  return requests_ == 0 ? 0.0 : static_cast<double>(hits_) /
                                    static_cast<double>(requests_);
}

double DeliveryMetrics::origin_share() const noexcept {
  const auto origin = misses_ + uncacheable_;
  return requests_ == 0 ? 0.0 : static_cast<double>(origin) /
                                    static_cast<double>(requests_);
}

double DeliveryMetrics::prefetch_waste() const noexcept {
  return prefetches_ == 0
             ? 0.0
             : 1.0 - static_cast<double>(useful_prefetches_) /
                         static_cast<double>(prefetches_);
}

stats::Summary DeliveryMetrics::latency_summary() const {
  return stats::summarize(latencies_);
}

void DeliveryMetrics::merge(const DeliveryMetrics& other) {
  requests_ += other.requests_;
  hits_ += other.hits_;
  misses_ += other.misses_;
  uncacheable_ += other.uncacheable_;
  errors_ += other.errors_;
  rejected_ += other.rejected_;
  bytes_ += other.bytes_;
  prefetches_ += other.prefetches_;
  prefetch_bytes_ += other.prefetch_bytes_;
  useful_prefetches_ += other.useful_prefetches_;
  pushes_ += other.pushes_;
  push_bytes_ += other.push_bytes_;
  pushes_used_ += other.pushes_used_;
  refresh_hits_ += other.refresh_hits_;
  latencies_.insert(latencies_.end(), other.latencies_.begin(),
                    other.latencies_.end());
}

}  // namespace jsoncdn::cdn
