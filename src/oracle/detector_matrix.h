// The detector comparison the paper could not produce: every detection
// strategy (core/period_detector.h) scored against ground truth on every
// hostile-periodic scenario, seed-swept, as one scenario × strategy matrix
// of precision / recall / F1 / period error. CI gates on it: the portfolio
// must beat the binned default where the default is known-weak, and the
// default must not regress on the benign workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/periodicity.h"
#include "oracle/conformance.h"

namespace jsoncdn::oracle {

struct DetectorMatrixConfig {
  std::vector<std::uint64_t> seeds = {1, 7, 1337};
  // First scenario is the benign reference; the rest are stress regimes.
  std::vector<std::string> scenarios = {
      "long-term",       "periodic-jitter", "periodic-drift",
      "periodic-dropout", "periodic-multi",  "periodic-diurnal",
  };
  std::vector<core::DetectorStrategy> strategies = {
      core::DetectorStrategy::kAcfFft,
      core::DetectorStrategy::kLombScargle,
      core::DetectorStrategy::kAutoperiod,
      core::DetectorStrategy::kCfdAutoperiod,
      core::DetectorStrategy::kMultiPeriod,
  };
  // Workload shape per (scenario, seed) case; matches the conformance
  // sweep's defaults so benign numbers line up with the seed-sweep table.
  double scale = 0.001;
  double duration_seconds = 2.0 * 3600.0;
  std::size_t n_clients = 600;
  std::size_t threads = 0;  // 0 = auto
  // Relative tolerance for calling a detected period equal to the truth.
  double period_tolerance = 0.15;

  // ---- CI bands ----
  // The default strategy (strategies.front()) must hold this F1 on the
  // benign scenario (scenarios.front()) — the refactor must not regress it.
  double min_default_benign_f1 = 0.90;
  // On every stress scenario, the best strategy's F1 must stay above this.
  double min_best_f1 = 0.50;
  // Scenarios where some non-default strategy must beat the default's F1
  // outright (the portfolio's reason to exist).
  std::vector<std::string> must_improve = {"periodic-jitter",
                                           "periodic-dropout"};
};

// Seed-averaged score of one strategy on one scenario.
struct DetectorCell {
  core::DetectorStrategy strategy = core::DetectorStrategy::kAcfFft;
  double precision = 0.0;   // mean over seeds
  double recall = 0.0;
  double f1 = 0.0;
  double mean_period_rel_error = 0.0;  // over all true positives, all seeds
  std::size_t true_positives = 0;      // summed over seeds
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t eligible_truth = 0;
};

struct ScenarioRow {
  std::string scenario;
  std::vector<DetectorCell> cells;  // config.strategies order
};

struct DetectorMatrixReport {
  std::vector<ScenarioRow> rows;       // config.scenarios order
  std::vector<std::string> failures;   // band violations; empty = pass
  [[nodiscard]] bool all_passed() const noexcept { return failures.empty(); }
};

// Runs the full matrix. Each (scenario, seed) workload is generated once
// and scored under every strategy, so strategy columns are compared on
// identical logs.
[[nodiscard]] DetectorMatrixReport run_detector_matrix(
    const DetectorMatrixConfig& config);

// Plain-text rendering (validator output).
[[nodiscard]] std::string render_detector_matrix(
    const DetectorMatrixReport& report);
// Markdown table for EXPERIMENTS.md: one row per (scenario, strategy).
[[nodiscard]] std::string render_detector_matrix_table(
    const DetectorMatrixReport& report);

}  // namespace jsoncdn::oracle
