#include "http/url.h"

#include <gtest/gtest.h>

namespace jsoncdn::http {
namespace {

TEST(ParseUrl, AbsoluteUrlComponents) {
  const auto u = parse_url("https://api.example.com/v1/stories?page=2&limit=10");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme, "https");
  EXPECT_EQ(u->host, "api.example.com");
  EXPECT_FALSE(u->port.has_value());
  ASSERT_EQ(u->path_segments.size(), 2u);
  EXPECT_EQ(u->path_segments[0], "v1");
  EXPECT_EQ(u->path_segments[1], "stories");
  ASSERT_EQ(u->query.size(), 2u);
  EXPECT_EQ(u->query[0].first, "page");
  EXPECT_EQ(u->query[0].second, "2");
}

TEST(ParseUrl, HostAndSchemeLowercased) {
  const auto u = parse_url("HTTPS://API.Example.COM/Path");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->scheme, "https");
  EXPECT_EQ(u->host, "api.example.com");
  EXPECT_EQ(u->path_segments[0], "Path");  // path case is significant
}

TEST(ParseUrl, ExplicitPort) {
  const auto u = parse_url("http://host:8080/x");
  ASSERT_TRUE(u.has_value());
  ASSERT_TRUE(u->port.has_value());
  EXPECT_EQ(*u->port, 8080);
}

TEST(ParseUrl, RejectsBadPorts) {
  EXPECT_FALSE(parse_url("http://host:0/x").has_value());
  EXPECT_FALSE(parse_url("http://host:65536/x").has_value());
  EXPECT_FALSE(parse_url("http://host:abc/x").has_value());
  EXPECT_FALSE(parse_url("http://:80/x").has_value());
}

TEST(ParseUrl, OriginRelative) {
  const auto u = parse_url("/api/v1/feed?u=1");
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->host.empty());
  EXPECT_EQ(u->path_segments.size(), 3u);
}

TEST(ParseUrl, RejectsRelativeWithoutSlash) {
  EXPECT_FALSE(parse_url("api/v1/feed").has_value());
  EXPECT_FALSE(parse_url("").has_value());
}

TEST(ParseUrl, StripsFragment) {
  const auto u = parse_url("https://h/x#section");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->path_segments.size(), 1u);
  EXPECT_EQ(u->str().find('#'), std::string::npos);
}

TEST(ParseUrl, DecodesPercentEncodedSegments) {
  const auto u = parse_url("https://h/a%20b/c?k=v%26w");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->path_segments[0], "a b");
  EXPECT_EQ(u->query[0].second, "v&w");
}

TEST(ParseUrl, EmptyQueryPairsSkipped) {
  const auto u = parse_url("https://h/x?&&a=1&&");
  ASSERT_TRUE(u.has_value());
  ASSERT_EQ(u->query.size(), 1u);
  EXPECT_EQ(u->query[0].first, "a");
}

TEST(ParseUrl, ValuelessQueryKey) {
  const auto u = parse_url("https://h/x?flag&k=v");
  ASSERT_TRUE(u.has_value());
  ASSERT_EQ(u->query.size(), 2u);
  EXPECT_EQ(u->query[0].first, "flag");
  EXPECT_EQ(u->query[0].second, "");
}

TEST(ParseUrl, CollapsesEmptyPathSegments) {
  const auto u = parse_url("https://h//a///b/");
  ASSERT_TRUE(u.has_value());
  ASSERT_EQ(u->path_segments.size(), 2u);
}

TEST(UrlStr, RoundTripsNormalizedForm) {
  const std::string raw = "https://api.example.com/v1/items/42?sort=asc&page=3";
  const auto u = parse_url(raw);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->str(), raw);
  // Re-parsing the rendered form is a fixed point.
  const auto again = parse_url(u->str());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *u);
}

TEST(UrlStr, OmitsDefaultPorts) {
  EXPECT_EQ(parse_url("https://h:443/x")->str(), "https://h/x");
  EXPECT_EQ(parse_url("http://h:80/x")->str(), "http://h/x");
  EXPECT_EQ(parse_url("http://h:8080/x")->str(), "http://h:8080/x");
}

TEST(UrlStr, EmptyPathRendersRootSlash) {
  EXPECT_EQ(parse_url("https://h")->str(), "https://h/");
  EXPECT_EQ(parse_url("https://h/")->path(), "/");
}

TEST(UrlEncodeDecode, RoundTripsArbitraryBytes) {
  const std::string nasty = "a b&c=d/e%f\tg\nh+i";
  EXPECT_EQ(url_decode(url_encode(nasty)), nasty);
}

TEST(UrlDecode, MalformedEscapesKeptLiterally) {
  EXPECT_EQ(url_decode("%"), "%");
  EXPECT_EQ(url_decode("%zz"), "%zz");
  EXPECT_EQ(url_decode("100%"), "100%");
}

TEST(UrlDecode, PlusBecomesSpace) { EXPECT_EQ(url_decode("a+b"), "a b"); }

TEST(UrlEncode, UnreservedCharactersUntouched) {
  const std::string unreserved =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~";
  EXPECT_EQ(url_encode(unreserved), unreserved);
}

}  // namespace
}  // namespace jsoncdn::http
