// Autocorrelation of uniformly sampled signals — the time-domain half of the
// paper's periodicity detector. Computed two ways: a direct O(n^2) reference
// (kept for tests) and the FFT route via the Wiener-Khinchin theorem, which
// the detector uses for long flows.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace jsoncdn::stats {

// Normalized autocorrelation r[k] for lags 0..max_lag of the mean-removed
// signal: r[0] == 1 when the signal has positive variance. A constant signal
// yields all-zero r (no periodic structure by definition). Requires a
// non-empty signal; max_lag is clamped to size-1.
[[nodiscard]] std::vector<double> autocorrelation_direct(
    std::span<const double> signal, std::size_t max_lag);

// Same contract as autocorrelation_direct, computed as ifft(|fft(x)|^2) with
// zero-padding to avoid circular wrap-around. Agrees with the direct method
// to floating-point tolerance (property-tested).
[[nodiscard]] std::vector<double> autocorrelation_fft(
    std::span<const double> signal, std::size_t max_lag);

// Indices k in [1, r.size()) that are strict local maxima of r (r[k] > r[k-1]
// and r[k] >= r[k+1]; the final lag qualifies when rising). Lag 0 never
// counts.
[[nodiscard]] std::vector<std::size_t> acf_peaks(std::span<const double> r);

// Fused ACF + periodogram from a single FFT of the zero-padded, mean-removed
// signal: the power spectrum |X|^2 *is* the (unnormalized) periodogram, and
// its inverse FFT is the autocorrelation (Wiener-Khinchin). The periodicity
// detector runs this once per permutation, so sharing the forward FFT
// matters. `pgram_power[k]` corresponds to FFT bin k+1 of the padded signal
// (`padded_size` long), matching Periodogram's indexing.
struct SpectralAnalysis {
  std::vector<double> acf;          // lags 0..max_lag, normalized
  std::vector<double> pgram_power;  // bins 1..padded/2, scaled by 1/padded
  std::size_t padded_size = 0;

  [[nodiscard]] double pgram_period_samples(std::size_t k) const {
    return static_cast<double>(padded_size) / static_cast<double>(k + 1);
  }
};

[[nodiscard]] SpectralAnalysis spectral_analysis(std::span<const double> signal,
                                                 std::size_t max_lag);

// Reusable scratch for spectral_analysis: the centered copy of the signal
// and the complex FFT buffer. The periodicity detector's permutation test
// calls spectral_analysis ~100 times per flow over thousands of flows, so
// reusing these (and the output vectors) removes every per-permutation
// allocation from the hot loop. One workspace per thread — never shared.
struct SpectralWorkspace {
  std::vector<double> centered;
  std::vector<std::complex<double>> freq;
};

// Allocation-free variant (after warm-up): identical results to the
// two-argument overload, written into `out` whose vectors are reused.
void spectral_analysis(std::span<const double> signal, std::size_t max_lag,
                       SpectralWorkspace& ws, SpectralAnalysis& out);

}  // namespace jsoncdn::stats
