#include "stats/rng.h"

#include <stdexcept>

#include "stats/hash.h"

namespace jsoncdn::stats {

Rng Rng::fork(std::string_view key) const { return fork(fnv1a64(key)); }

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

}  // namespace jsoncdn::stats
