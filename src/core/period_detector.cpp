#include "core/period_detector.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/periodicity_internal.h"
#include "stats/autocorrelation.h"

namespace jsoncdn::core {

namespace {

// Shared input contract: every timestamp finite, sequence non-decreasing.
// Rejection happens before any strategy code runs so all strategies agree
// on malformed input, bit-for-bit, regardless of thread count.
bool valid_times(std::span<const double> times) noexcept {
  double prev = -std::numeric_limits<double>::infinity();
  for (const double t : times) {
    if (!std::isfinite(t)) return false;
    if (t < prev) return false;
    prev = t;
  }
  return true;
}

// Parabolic (three-point) peak interpolation: sub-bin offset of the apex
// through (y0, y1, y2) with y1 the discrete peak. Clamped to half a bin.
double parabolic_offset(double y0, double y1, double y2) {
  const double denom = y0 - 2.0 * y1 + y2;
  if (denom == 0.0) return 0.0;
  return std::clamp(0.5 * (y0 - y2) / denom, -0.5, 0.5);
}

}  // namespace

PeriodDetection PeriodDetector::detect(std::span<const double> times,
                                       stats::Rng& rng) const {
  const auto scratch = make_scratch();
  return detect(times, rng, *scratch);
}

PeriodDetection PeriodDetector::detect(std::span<const double> times,
                                       stats::Rng& rng,
                                       Scratch& scratch) const {
  const auto all = detect_all(times, rng, 1, scratch);
  if (!all.empty()) return all.front();
  return PeriodDetection{};
}

std::vector<PeriodDetection> PeriodDetector::detect_all(
    std::span<const double> times, stats::Rng& rng,
    std::size_t max_periods) const {
  const auto scratch = make_scratch();
  return detect_all(times, rng, max_periods, *scratch);
}

std::vector<PeriodDetection> PeriodDetector::detect_all(
    std::span<const double> times, stats::Rng& rng, std::size_t max_periods,
    Scratch& scratch) const {
  if (max_periods == 0 || !valid_times(times)) return {};
  return do_detect_all(times, rng, max_periods, scratch);
}

// ---- acf-fft (the paper's default) ---------------------------------------

namespace {

struct AcfScratch final : PeriodDetector::Scratch {
  DetectScratch inner;
};

class AcfFftDetector final : public PeriodDetector {
 public:
  explicit AcfFftDetector(const DetectorParams& params) : inner_(params) {}

  std::string_view name() const noexcept override { return "acf-fft"; }
  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<AcfScratch>();
  }
  bool periods_match(double a, double b) const noexcept override {
    return inner_.periods_match(a, b);
  }

 protected:
  std::vector<PeriodDetection> do_detect_all(std::span<const double> times,
                                             stats::Rng& rng,
                                             std::size_t max_periods,
                                             Scratch& scratch) const override {
    auto* typed = dynamic_cast<AcfScratch*>(&scratch);
    DetectScratch local;
    return inner_.detect_all(times, rng, max_periods,
                             typed != nullptr ? typed->inner : local);
  }

 private:
  PeriodicityDetector inner_;
};

// ---- lomb-scargle --------------------------------------------------------

struct LsScratch final : PeriodDetector::Scratch {
  std::vector<double> rel;                 // event times relative to t0
  std::vector<std::complex<double>> acc;   // per-frequency phasor sums
  std::vector<double> power;
  std::vector<char> masked;
};

// Schuster/Rayleigh event periodogram over raw timestamps: for unit-weight
// events the classic Lomb-Scargle statistic degenerates to
// P(f) = |sum_j exp(-2*pi*i*f*t_j)|^2 / n, which under a homogeneous
// Poisson null is Exp(1)-distributed per frequency. No binning means
// jitter and dropout shift phases slightly instead of smearing counts
// across bins, which is exactly where the binned default loses power.
class LombScargleDetector final : public PeriodDetector {
 public:
  explicit LombScargleDetector(const DetectorParams& params)
      : params_(params) {
    if (params.ls_oversample < 1.0)
      throw std::invalid_argument("LombScargleDetector: ls_oversample < 1");
    if (params.ls_max_frequencies < 16)
      throw std::invalid_argument(
          "LombScargleDetector: ls_max_frequencies < 16");
    if (params.ls_max_events < 16)
      throw std::invalid_argument("LombScargleDetector: ls_max_events < 16");
    if (params.ls_min_gap_agreement < 0.0 ||
        params.ls_min_gap_agreement > 1.0)
      throw std::invalid_argument(
          "LombScargleDetector: ls_min_gap_agreement outside [0,1]");
    if (params.permutations < 2)
      throw std::invalid_argument("LombScargleDetector: permutations < 2");
    if (params.sample_interval <= 0.0)
      throw std::invalid_argument("LombScargleDetector: sample_interval <= 0");
    if (params.period_match_tolerance <= 0.0 ||
        params.period_match_tolerance >= 1.0)
      throw std::invalid_argument(
          "LombScargleDetector: tolerance outside (0,1)");
    if (params.min_cycles < 2.0)
      throw std::invalid_argument("LombScargleDetector: min_cycles < 2");
  }

  std::string_view name() const noexcept override { return "lomb-scargle"; }
  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<LsScratch>();
  }
  bool periods_match(double a, double b) const noexcept override {
    return detail::relative_periods_match(a, b,
                                          params_.period_match_tolerance);
  }

 protected:
  std::vector<PeriodDetection> do_detect_all(std::span<const double> times,
                                             stats::Rng& /*rng*/,
                                             std::size_t max_periods,
                                             Scratch& scratch) const override {
    std::vector<PeriodDetection> out;
    if (times.size() < params_.min_requests) return out;
    const double span = times.back() - times.front();
    if (span <= params_.sample_interval * 4.0) return out;

    LsScratch local;
    auto* typed = dynamic_cast<LsScratch*>(&scratch);
    LsScratch& s = typed != nullptr ? *typed : local;

    // Dense flows are strided down to the event cap: every k-th event keeps
    // the span (and the fundamental's spectral line) while bounding the
    // O(n * M) scan. Flows this dense are far past the cap's resolution
    // needs anyway.
    s.rel.clear();
    const std::size_t stride =
        (times.size() + params_.ls_max_events - 1) / params_.ls_max_events;
    for (std::size_t i = 0; i < times.size(); i += stride)
      s.rel.push_back(times[i] - times.front());
    const std::size_t m = s.rel.size();
    if (m < params_.min_requests) return out;

    // Frequency grid: periods from span/min_cycles (trust floor, same as
    // the default detector) down to twice the jitter floor or a quarter of
    // the mean gap, whichever is coarser — below the mean gap the grid only
    // chases harmonics. Oversampled by ls_oversample relative to the
    // natural resolution 1/span; coarsened, never truncated, past the cap.
    const double f_min = params_.min_cycles / span;
    const double mean_gap = span / static_cast<double>(m - 1);
    const double f_max =
        1.0 / std::max(2.0 * params_.sample_interval, 0.25 * mean_gap);
    if (f_max <= f_min) return out;
    double df = 1.0 / (params_.ls_oversample * span);
    std::size_t grid = static_cast<std::size_t>(
                           std::floor((f_max - f_min) / df)) + 1;
    if (grid > params_.ls_max_frequencies) {
      grid = params_.ls_max_frequencies;
      df = (f_max - f_min) / static_cast<double>(grid - 1);
    }
    if (grid < 4) return out;

    // Phasor recurrence: exp(-2*pi*i*(f_min + k*df)*t) advances by a fixed
    // per-event rotation w = exp(-2*pi*i*df*t) each frequency step, so the
    // whole scan needs one sincos pair per event instead of one per
    // (event, frequency) cell.
    s.acc.assign(grid, {0.0, 0.0});
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    for (const double t : s.rel) {
      std::complex<double> z = std::polar(1.0, -kTwoPi * f_min * t);
      const std::complex<double> w = std::polar(1.0, -kTwoPi * df * t);
      for (std::size_t k = 0; k < grid; ++k) {
        s.acc[k] += z;
        z *= w;
      }
    }
    s.power.resize(grid);
    for (std::size_t k = 0; k < grid; ++k)
      s.power[k] = std::norm(s.acc[k]) / static_cast<double>(m);

    // Analytic Poisson-null threshold at the same family-wise level as the
    // default's permutation test (alpha = 1/permutations): each P(f) is
    // Exp(1) under the null, so the max over `grid` bins exceeds z* with
    // probability alpha at z* = -ln(1 - (1 - alpha)^(1/grid)). A
    // gap-shuffle permutation null is unusable here — a clean periodic
    // flow's near-constant gaps reproduce the flow under any shuffle.
    const double alpha = 1.0 / static_cast<double>(params_.permutations);
    const double threshold =
        -std::log(1.0 -
                  std::pow(1.0 - alpha, 1.0 / static_cast<double>(grid)));

    s.masked.assign(grid, 0);
    while (out.size() < max_periods) {
      // Strongest unmasked significant interior local maximum.
      std::size_t best_k = grid;
      for (std::size_t k = 1; k + 1 < grid; ++k) {
        if (s.masked[k] != 0) continue;
        if (s.power[k] <= threshold) continue;
        if (s.power[k] < s.power[k - 1] || s.power[k] < s.power[k + 1])
          continue;
        if (best_k == grid || s.power[k] > s.power[best_k]) best_k = k;
      }
      if (best_k == grid) break;

      // Fundamental-vs-harmonic: in multi-client aggregates the strongest
      // line is often a harmonic of the true period. If a subharmonic
      // f/m carries comparable significant power, prefer it — the largest
      // such m is the fundamental.
      std::size_t chosen = best_k;
      const double peak_power = s.power[best_k];
      for (std::size_t m_div = 8; m_div >= 2; --m_div) {
        const double f_sub =
            (f_min + static_cast<double>(best_k) * df) /
            static_cast<double>(m_div);
        if (f_sub < f_min) continue;
        const auto center = static_cast<std::ptrdiff_t>(
            std::llround((f_sub - f_min) / df));
        std::size_t sub_k = grid;
        for (std::ptrdiff_t j = center - 2; j <= center + 2; ++j) {
          if (j < 1 || j + 1 >= static_cast<std::ptrdiff_t>(grid)) continue;
          const auto k = static_cast<std::size_t>(j);
          if (s.power[k] <= threshold) continue;
          if (s.power[k] < 0.6 * peak_power) continue;
          if (s.power[k] < s.power[k - 1] || s.power[k] < s.power[k + 1])
            continue;
          if (sub_k == grid || s.power[k] > s.power[sub_k]) sub_k = k;
        }
        if (sub_k != grid) {
          chosen = sub_k;
          break;
        }
      }

      const double offset = parabolic_offset(
          s.power[chosen - 1], s.power[chosen], s.power[chosen + 1]);
      const double f_ref =
          f_min + (static_cast<double>(chosen) + offset) * df;
      const double period = 1.0 / f_ref;

      if (out.empty()) {
        // Precision guard on the primary: the analytic threshold alone
        // over-fires on clumpy session flows whose burst spacing lights a
        // low frequency without the gaps actually repeating. A genuinely
        // periodic flow (even with dropout, which only skips whole ticks)
        // keeps most gaps near a multiple of the period.
        if (gap_agreement(times, period) < params_.ls_min_gap_agreement)
          break;
      }

      PeriodDetection det;
      det.periodic = true;
      det.period_seconds = period;
      det.acf_peak_value = gap_agreement(times, period);
      det.periodogram_power = s.power[chosen];
      det.acf_threshold = params_.ls_min_gap_agreement;
      det.power_threshold = threshold;
      out.push_back(det);

      // Mask the whole harmonic family (both directions) so a further
      // iteration can only surface a genuinely distinct period.
      for (std::size_t k = 0; k < grid; ++k) {
        if (s.masked[k] != 0) continue;
        const double f = f_min + static_cast<double>(k) * df;
        const double ratio = f >= f_ref ? f / f_ref : f_ref / f;
        const double nearest = std::max(1.0, std::round(ratio));
        if (std::abs(ratio - nearest) / nearest <=
            params_.period_match_tolerance)
          s.masked[k] = 1;
      }
    }
    return out;
  }

 private:
  // Share of interarrival gaps within 25% of some multiple of `period`.
  static double gap_agreement(std::span<const double> times, double period) {
    if (times.size() < 2 || period <= 0.0) return 0.0;
    std::size_t ok = 0;
    for (std::size_t i = 0; i + 1 < times.size(); ++i) {
      const double gap = times[i + 1] - times[i];
      const double mult = std::max(1.0, std::round(gap / period));
      if (std::abs(gap - mult * period) <= 0.25 * period) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(times.size() - 1);
  }

  DetectorParams params_;
};

// ---- autoperiod / cfd-autoperiod -----------------------------------------

struct ApScratch final : PeriodDetector::Scratch {
  DetectScratch spec;                       // signal + ACF + null buffers
  stats::SpectralAnalysis source_spectral;  // periodogram of the source
  std::vector<double> source;               // raw or first-differenced
};

// Vlachos et al.'s autoperiod: the periodogram proposes candidate periods
// (cheap, frequency-resolution-limited), the ACF confirms each as a "hill" —
// a positive interior local maximum inside the candidate's tolerance window
// — and the hill apex, parabola-refined, is the reported period. The CFD
// variant first-differences the signal before the periodogram (suppressing
// trend/drift leakage into low frequencies) and clusters adjacent candidate
// bins so one true period proposes one validation instead of several.
class AutoperiodDetector final : public PeriodDetector {
 public:
  AutoperiodDetector(const DetectorParams& params, bool clustered)
      : inner_(params), clustered_(clustered) {}

  std::string_view name() const noexcept override {
    return clustered_ ? "cfd-autoperiod" : "autoperiod";
  }
  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<ApScratch>();
  }
  bool periods_match(double a, double b) const noexcept override {
    return inner_.periods_match(a, b);
  }

 protected:
  std::vector<PeriodDetection> do_detect_all(std::span<const double> times,
                                             stats::Rng& rng,
                                             std::size_t max_periods,
                                             Scratch& scratch) const override {
    std::vector<PeriodDetection> out;
    const DetectorParams& params = inner_.params();

    ApScratch local;
    auto* typed = dynamic_cast<ApScratch*>(&scratch);
    ApScratch& s = typed != nullptr ? *typed : local;

    const auto binned = detail::bin_flow(params, times, s.spec.signal);
    if (!binned.usable) return out;
    const auto& signal = s.spec.signal;
    const double dt = binned.dt;

    // ACF of the raw signal — validation always runs against the original.
    stats::spectral_analysis(signal, binned.max_lag, s.spec.workspace,
                             s.spec.spectral);
    const auto& acf = s.spec.spectral.acf;

    // Periodogram source: raw signal, or linearly detrended (CFD). The
    // detrend removes ramps (session build-up, drifting rates) that leak
    // power into the low-frequency bins, without the high-pass distortion a
    // first difference would add.
    s.source.assign(signal.begin(), signal.end());
    if (clustered_ && s.source.size() >= 2) {
      const double n = static_cast<double>(s.source.size());
      double sum = 0.0;
      double weighted = 0.0;
      for (std::size_t i = 0; i < s.source.size(); ++i) {
        sum += s.source[i];
        weighted += static_cast<double>(i) * s.source[i];
      }
      const double mean_i = (n - 1.0) / 2.0;
      const double var_i = (n * n - 1.0) / 12.0;  // variance of 0..n-1
      const double slope = (weighted / n - mean_i * (sum / n)) / var_i;
      const double intercept = sum / n - slope * mean_i;
      for (std::size_t i = 0; i < s.source.size(); ++i)
        s.source[i] -= intercept + slope * static_cast<double>(i);
    }
    if (s.source.size() < 4) return out;
    const std::size_t source_lag =
        std::min(binned.max_lag, s.source.size() - 1);
    stats::spectral_analysis(s.source, source_lag, s.spec.workspace,
                             s.source_spectral);

    // Permutation significance on the periodogram only (the ACF hill check
    // replaces the default's ACF threshold). Same shuffle null and exact
    // early termination as the default pipeline.
    const double observed = detail::max_power(s.source_spectral.pgram_power);
    auto& null_power = s.spec.null_power_max;
    null_power.clear();
    null_power.reserve(params.permutations);
    std::size_t exceed = 0;
    auto& shuffled = s.spec.shuffled;
    shuffled.assign(s.source.begin(), s.source.end());
    for (std::size_t p = 0; p < params.permutations; ++p) {
      std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
      stats::spectral_analysis(shuffled, source_lag, s.spec.workspace,
                               s.spec.null_spectral);
      const double w = detail::max_power(s.spec.null_spectral.pgram_power);
      null_power.push_back(w);
      if (w >= observed && ++exceed >= 2) return out;
    }
    std::sort(null_power.begin(), null_power.end());
    const double power_threshold = null_power[params.permutations - 2];

    // Candidate periods from significant bins, kept inside the testable
    // range [2*dt, max_lag*dt*(1+tol)].
    struct Candidate {
      double period;
      double power;
    };
    std::vector<Candidate> candidates;
    const auto& pgram = s.source_spectral.pgram_power;
    const double period_hi =
        static_cast<double>(binned.max_lag) * dt *
        (1.0 + params.period_match_tolerance);
    for (std::size_t k = 0; k < pgram.size(); ++k) {
      if (pgram[k] <= power_threshold) continue;
      const double period = s.source_spectral.pgram_period_samples(k) * dt;
      if (period < 2.0 * dt || period > period_hi) continue;
      candidates.push_back({period, pgram[k]});
    }
    if (candidates.empty()) return out;

    if (clustered_) {
      // Merge candidates whose periods agree within tolerance (adjacent
      // periodogram bins around one true period), keeping the
      // strongest-power member per cluster.
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.period < b.period;
                });
      std::vector<Candidate> merged;
      for (const auto& c : candidates) {
        if (!merged.empty() &&
            detail::relative_periods_match(merged.back().period, c.period,
                                           params.period_match_tolerance)) {
          if (c.power > merged.back().power) merged.back() = c;
        } else {
          merged.push_back(c);
        }
      }
      candidates = std::move(merged);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.power > b.power;
              });

    // Hill validation on the ACF, strongest candidate first.
    for (const auto& c : candidates) {
      if (out.size() >= max_periods) break;
      const auto lag_lo = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::floor(
                 c.period * (1.0 - params.period_match_tolerance) / dt)));
      const auto lag_hi = std::min<std::size_t>(
          binned.max_lag, static_cast<std::size_t>(std::ceil(
                              c.period *
                              (1.0 + params.period_match_tolerance) / dt)));
      if (lag_hi <= lag_lo + 1 || lag_hi >= acf.size()) continue;
      std::size_t apex = lag_lo;
      for (std::size_t lag = lag_lo; lag <= lag_hi; ++lag)
        if (acf[lag] > acf[apex]) apex = lag;
      // A hill: apex strictly inside the window, positive, and above both
      // window edges — a plateau or monotone ramp is not a hill.
      if (apex == lag_lo || apex == lag_hi) continue;
      if (acf[apex] <= 0.0) continue;
      if (acf[apex] <= acf[lag_lo] || acf[apex] <= acf[lag_hi]) continue;

      const double offset =
          parabolic_offset(acf[apex - 1], acf[apex], acf[apex + 1]);
      const double period = (static_cast<double>(apex) + offset) * dt;

      // Near-multiples of an already-accepted period are the same family.
      bool family = false;
      for (const auto& accepted : out) {
        const double ratio = period >= accepted.period_seconds
                                 ? period / accepted.period_seconds
                                 : accepted.period_seconds / period;
        const double nearest = std::max(1.0, std::round(ratio));
        if (std::abs(ratio - nearest) / nearest <=
            params.period_match_tolerance) {
          family = true;
          break;
        }
      }
      if (family) continue;

      PeriodDetection det;
      det.periodic = true;
      det.period_seconds = period;
      det.acf_peak_value = acf[apex];
      det.periodogram_power = c.power;
      det.acf_threshold = 0.0;  // the hill shape is the ACF criterion
      det.power_threshold = power_threshold;
      out.push_back(det);
    }
    return out;
  }

 private:
  PeriodicityDetector inner_;  // validated params + periods_match
  bool clustered_;
};

// ---- multi-period --------------------------------------------------------

struct MpScratch final : PeriodDetector::Scratch {
  DetectScratch spec;
  std::vector<double> residual;
  std::vector<double> profile;         // per-phase sums of the fold
  std::vector<std::size_t> phase_count;
};

// Folds `signal` at a real-valued period (in bins) and fills per-phase sums
// and counts; returns the fold energy sum(acc^2/count). A fractional-bin
// fold: phase = fmod(i, period_bins), so a period that is not an integer
// number of bins does not drift across the profile the way an integer-lag
// fold would.
double fold_at(std::span<const double> signal, double period_bins,
               std::vector<double>& acc, std::vector<std::size_t>& count) {
  const auto nphases = static_cast<std::size_t>(std::ceil(period_bins));
  acc.assign(nphases, 0.0);
  count.assign(nphases, 0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const auto p = std::min<std::size_t>(
        nphases - 1, static_cast<std::size_t>(
                         std::fmod(static_cast<double>(i), period_bins)));
    acc[p] += signal[i];
    ++count[p];
  }
  double energy = 0.0;
  for (std::size_t p = 0; p < nphases; ++p)
    if (count[p] > 0) energy += acc[p] * acc[p] / static_cast<double>(count[p]);
  return energy;
}

// The paper's named future work: iteratively run the default pipeline,
// subtract the detected component's per-phase mean profile from the binned
// signal, and repeat on the residual. Overlapping periodic flows that mask
// each other in a single pass surface one at a time.
class MultiPeriodDetector final : public PeriodDetector {
 public:
  explicit MultiPeriodDetector(const DetectorParams& params)
      : inner_(params) {}

  static constexpr std::size_t kMaxDetections = 4;

  std::string_view name() const noexcept override { return "multi-period"; }
  std::unique_ptr<Scratch> make_scratch() const override {
    return std::make_unique<MpScratch>();
  }
  std::size_t max_detections() const noexcept override {
    return kMaxDetections;
  }
  bool periods_match(double a, double b) const noexcept override {
    return inner_.periods_match(a, b);
  }

 protected:
  std::vector<PeriodDetection> do_detect_all(std::span<const double> times,
                                             stats::Rng& rng,
                                             std::size_t max_periods,
                                             Scratch& scratch) const override {
    std::vector<PeriodDetection> out;
    const DetectorParams& params = inner_.params();

    MpScratch local;
    auto* typed = dynamic_cast<MpScratch*>(&scratch);
    MpScratch& s = typed != nullptr ? *typed : local;

    const auto binned = detail::bin_flow(params, times, s.spec.signal);
    if (!binned.usable) return out;
    s.residual.assign(s.spec.signal.begin(), s.spec.signal.end());

    while (out.size() < max_periods) {
      const auto analysis =
          detail::analyze_signal(params, s.residual, binned.dt, binned.span,
                                 binned.max_lag, rng, s.spec);
      if (analysis.matches.empty()) break;
      std::vector<PeriodDetection> one;
      detail::pick_fundamentals(analysis, params.period_match_tolerance, 1,
                                one);
      if (one.empty()) break;
      const PeriodDetection& det = one.front();

      // Subtraction leaving the component's family detectable again would
      // loop forever on the same period; treat that as convergence.
      bool family = false;
      for (const auto& accepted : out) {
        const double ratio = det.period_seconds >= accepted.period_seconds
                                 ? det.period_seconds / accepted.period_seconds
                                 : accepted.period_seconds / det.period_seconds;
        const double nearest = std::max(1.0, std::round(ratio));
        if (std::abs(ratio - nearest) / nearest <=
            params.period_match_tolerance) {
          family = true;
          break;
        }
      }
      if (family) break;
      out.push_back(det);

      // Remove the component: subtract the per-phase mean of a fractional
      // fold at the detected period. The ACF-refined period can be off by a
      // few tenths of a percent, which over dozens of cycles drifts the fold
      // by many bins and turns the subtraction into a no-op — so first
      // re-refine the period by maximizing fold energy over a +/-2%
      // neighborhood, then subtract at the argmax.
      const double period0_bins = det.period_seconds / binned.dt;
      if (period0_bins < 2.0 ||
          period0_bins >= static_cast<double>(s.residual.size())) {
        break;
      }
      double best_bins = period0_bins;
      double best_energy = -1.0;
      for (int step = -40; step <= 40; ++step) {
        const double p = period0_bins * (1.0 + 5e-4 * static_cast<double>(step));
        if (p < 2.0) continue;
        const double energy =
            fold_at(s.residual, p, s.profile, s.phase_count);
        if (energy > best_energy) {
          best_energy = energy;
          best_bins = p;
        }
      }
      fold_at(s.residual, best_bins, s.profile, s.phase_count);
      const auto nphases = static_cast<std::size_t>(std::ceil(best_bins));
      for (std::size_t i = 0; i < s.residual.size(); ++i) {
        const auto phase = std::min<std::size_t>(
            nphases - 1, static_cast<std::size_t>(std::fmod(
                             static_cast<double>(i), best_bins)));
        if (s.phase_count[phase] > 0)
          s.residual[i] -=
              s.profile[phase] / static_cast<double>(s.phase_count[phase]);
      }
    }
    return out;
  }

 private:
  PeriodicityDetector inner_;
};

constexpr DetectorInfo kRegistry[] = {
    {DetectorStrategy::kAcfFft, "acf-fft",
     "ACF + periodogram with permutation test (paper default)"},
    {DetectorStrategy::kLombScargle, "lomb-scargle",
     "event periodogram on raw timestamps, no binning"},
    {DetectorStrategy::kAutoperiod, "autoperiod",
     "periodogram candidates validated as ACF hills"},
    {DetectorStrategy::kCfdAutoperiod, "cfd-autoperiod",
     "autoperiod with detrending and clustered candidates"},
    {DetectorStrategy::kMultiPeriod, "multi-period",
     "iteratively subtracts detected components"},
};

}  // namespace

std::span<const DetectorInfo> detector_registry() noexcept {
  return kRegistry;
}

std::string_view detector_name(DetectorStrategy strategy) {
  for (const auto& info : kRegistry)
    if (info.strategy == strategy) return info.name;
  throw std::invalid_argument("detector_name: unknown strategy");
}

DetectorStrategy detector_strategy_from_name(std::string_view name) {
  for (const auto& info : kRegistry)
    if (info.name == name) return info.strategy;
  throw std::invalid_argument("unknown detector: " + std::string(name));
}

std::unique_ptr<PeriodDetector> make_period_detector(
    DetectorStrategy strategy, const DetectorParams& params) {
  switch (strategy) {
    case DetectorStrategy::kAcfFft:
      return std::make_unique<AcfFftDetector>(params);
    case DetectorStrategy::kLombScargle:
      return std::make_unique<LombScargleDetector>(params);
    case DetectorStrategy::kAutoperiod:
      return std::make_unique<AutoperiodDetector>(params, false);
    case DetectorStrategy::kCfdAutoperiod:
      return std::make_unique<AutoperiodDetector>(params, true);
    case DetectorStrategy::kMultiPeriod:
      return std::make_unique<MultiPeriodDetector>(params);
  }
  throw std::invalid_argument("make_period_detector: unknown strategy");
}

}  // namespace jsoncdn::core
