// `.jlog` binary sidecars of a LogTable for fast reloads in bench/validate
// sweeps: parse a CSV log once, write the columnar image, and every later
// run deserializes dictionaries + columns with no tokenizing, unescaping,
// or hashing.
//
// Two on-disk versions share the first 8 bytes as a magic tag:
//
//   "jlogcdn1" — v1, this file: one uncompressed image of the whole table.
//     Layout (all integers little-endian, no padding):
//       magic          8 bytes  "jlogcdn1"
//       row_count      u64
//       6 dictionaries, in order url, client_id, user_agent, domain,
//       content_type, client_key:
//         count        u32
//         lengths      u32 × count
//         bytes        concatenation of the strings (sum of lengths)
//       7 value columns, row_count entries each:
//         timestamp f64 · method u8 · status i32 · response_bytes u64 ·
//         request_bytes u64 · cache_status u8 · edge_id u32
//       6 symbol columns, row_count × u32 each, same dictionary order
//
//   "jlogcdn2" — v2, the tiered chunk store (src/shard): compressed column
//     chunks with zone maps for out-of-core scans. The format lives in
//     shard/format.h; this header only knows its magic so every tool can
//     dispatch on version through one detect_log_format() call.
//
// Both readers are fully bounds-checked: a truncated file, bad magic, or any
// out-of-range symbol/enum value throws std::runtime_error before any row
// becomes visible — binary corruption is structural, so unlike CSV there is
// no per-line permissive skip. On success the IngestReport is filled as if
// a clean CSV of the same rows had been ingested (header_seen, records ==
// row count), so tools report ingest state uniformly across formats.
#pragma once

#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "logs/csv.h"
#include "logs/table.h"

namespace jsoncdn::logs {

// Magic tags opening .jlog files, by version.
[[nodiscard]] std::string_view jlog_magic() noexcept;     // v1 "jlogcdn1"
[[nodiscard]] std::string_view jlog_v2_magic() noexcept;  // v2 "jlogcdn2"

// What kind of log file `path` holds, decided by leading magic (never by
// extension). Anything unreadable, shorter than a magic, or without a known
// magic is kText — the TSV reader then produces the authoritative error.
enum class LogFormat { kText, kJlogV1, kJlogV2 };
[[nodiscard]] LogFormat detect_log_format(const std::string& path);

// Throws the uniform corruption error every .jlog reader uses.
[[noreturn]] void jlog_corrupt(const std::string& path, const char* what);

// Bounds-checked little-endian cursor over an in-memory byte image (an
// mmapped file in practice) — the one read path v1 and the v2 chunk store
// share. Every accessor throws via jlog_corrupt() instead of reading out of
// range.
class BinaryReader {
 public:
  BinaryReader(std::string_view bytes, const std::string& path) noexcept
      : data_(bytes.data()), size_(bytes.size()), path_(path) {}

  template <typename T>
  T pod() {
    T v;
    need(sizeof(T), "truncated scalar");
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> column(std::size_t count) {
    // Division-form bound is overflow-safe for attacker-chosen counts.
    if (count > (size_ - pos_) / sizeof(T)) {
      jlog_corrupt(path_, "truncated column");
    }
    std::vector<T> col(count);
    if (count > 0) std::memcpy(col.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return col;
  }
  std::string_view bytes(std::size_t n) {
    need(n, "truncated dictionary bytes");
    const std::string_view v(data_ + pos_, n);
    pos_ += n;
    return v;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  void need(std::size_t n, const char* what) const {
    if (n > size_ - pos_) jlog_corrupt(path_, what);
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string& path_;
};

// Buffered little-endian plain-old-data writer — the shared write path.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) noexcept : os_(os) {}
  template <typename T>
  void pod(T v) {
    raw(&v, sizeof(T));
  }
  template <typename T>
  void column(const std::vector<T>& col) {
    raw(col.data(), col.size() * sizeof(T));
  }
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;
    os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    written_ += n;
  }
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ostream& os_;
  std::uint64_t written_ = 0;
};

// Dictionary block (count, lengths, bytes) — one encoding for v1 bodies and
// the v2 footer. The reader enforces that entries come out dense, unique,
// and in file order; a duplicate would silently remap every row referencing
// the later copy.
void write_jlog_dictionary(BinaryWriter& out, const StringInterner& dict);
void read_jlog_dictionary(BinaryReader& in, StringInterner& dict,
                          const std::string& path);

// Writes the table's dictionaries and columns to `path` (v1). Throws
// std::runtime_error when the file cannot be created or written.
void write_jlog(const std::string& path, const LogTable& table);

// Reads a v1 .jlog file back into a LogTable through one shared mmap +
// bounds-check path (logs::MappedFile + BinaryReader). Throws
// std::runtime_error on open failure, bad magic, truncation, or corrupt
// symbol/enum values; fills *report (records, lines, header_seen) on
// success.
[[nodiscard]] LogTable read_jlog(const std::string& path,
                                 IngestReport* report = nullptr);

// True when `path` names a v1 .jlog file (by magic, not extension).
// Prefer detect_log_format() in new code — it also recognizes v2.
[[nodiscard]] bool is_jlog_file(const std::string& path);

}  // namespace jsoncdn::logs
