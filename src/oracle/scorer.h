// Oracle scorers: join analysis output against the ground-truth sidecar and
// grade it.
//
// Three scorers, one per analysis family:
//   - score_periodicity: precision / recall / F1 of the §5.1 detector over
//     the sidecar's labelled periodic flows, with per-flow period error;
//   - score_ngram: the §5.2 predictor's accuracy@K on the edge log next to
//     its *skyline* — the same protocol run on the true session chains the
//     generator intended — so the delta isolates what observing sessions
//     through the CDN costs;
//   - score_marginals: L1 distance of the characterization marginals
//     (device mix, population mix, industry coverage) from the generator's
//     configured / realized populations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "logs/dataset.h"
#include "oracle/ground_truth.h"

namespace jsoncdn::oracle {

// ---- Periodicity detector -------------------------------------------------

struct DetectorScore {
  std::size_t truth_flows = 0;     // labelled periodic flows in the sidecar
  std::size_t eligible_truth = 0;  // truth flows the analysis examined (the
                                   // rest fell to the >=10-requests /
                                   // >=10-clients eligibility filter)
  std::size_t analyzed_flows = 0;  // all client-object flows examined
  std::size_t true_positives = 0;  // detected with the right period
  std::size_t false_positives = 0; // detected where truth has no period (or
                                   // the wrong one)
  std::size_t false_negatives = 0; // eligible truth flows not recovered
  // Detections on flows of labeled attackers (sidecar `attacker` rows).
  // Neither TP nor FP: rate-limited bots genuinely emit periodic cadence
  // (a scraper re-walking a URL space revisits each URL every T seconds),
  // but the truth only models *intended* periodic flows, so the oracle can
  // call these detections neither right nor wrong. Zero on benign runs.
  std::size_t hostile_detections = 0;
  // |detected - true| / true over the true positives.
  std::vector<double> period_rel_errors;

  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double recall() const noexcept;  // over eligible truth flows
  [[nodiscard]] double f1() const noexcept;
  // Share of truth flows the eligibility filter let through at all.
  [[nodiscard]] double coverage() const noexcept;
  [[nodiscard]] double max_period_rel_error() const noexcept;
};

// `period_tolerance`: relative tolerance for calling a detected period equal
// to the true one (same convention as DetectorParams::period_match_tolerance).
// A detection whose period misses the truth by more counts as FP *and* FN.
[[nodiscard]] DetectorScore score_periodicity(
    const core::PeriodicityReport& report, const TruthSidecar& truth,
    double period_tolerance = 0.15);

// ---- Ngram predictor ------------------------------------------------------

struct NgramScore {
  core::NgramAccuracy measured;  // evaluate_ngram over the edge log
  core::NgramAccuracy skyline;   // same protocol over true session chains
  // skyline accuracy minus measured accuracy per K (positive = the log path
  // lost information relative to the intended chains).
  [[nodiscard]] std::map<std::size_t, double> delta() const;
};

// `json` is the JSON-filtered dataset (the paper's protocol). The skyline
// run honours config.context_len / ks / train_fraction / seed; its clustered
// variant clusters through the sidecar's template map (the ideal clustering)
// with core::cluster_url as fallback for off-graph URLs.
[[nodiscard]] NgramScore score_ngram(const logs::Dataset& json,
                                     const TruthSidecar& truth,
                                     const core::NgramEvalConfig& config);

// ---- Characterization marginals ------------------------------------------

struct MarginalScore {
  // L1 distance between the UA-classifier's device request shares and the
  // truth device (request-weighted, joined per client).
  double device_request_l1 = 0.0;
  // L1 distance between the realized client-class population and the
  // generator's configured shares (both normalized).
  double class_population_l1 = 0.0;
  // L1 distance between the per-industry share of distinct domains seen in
  // the log and the configured uniform industry assignment.
  double industry_domain_l1 = 0.0;
  std::size_t joined_requests = 0;    // records matched to a truth client
  std::size_t unmatched_requests = 0; // records with no truth client
  // Records keyed to a labeled attacker. Hostile traffic is excluded from
  // both sides of the marginal comparison: the marginals grade recovery of
  // the benign population parameters, and the sidecar labels make the
  // exclusion exact. Zero for benign sidecars.
  std::size_t hostile_requests = 0;
};

// `ds` must be the dataset `source` was computed over.
[[nodiscard]] MarginalScore score_marginals(const logs::Dataset& ds,
                                            const core::SourceBreakdown& source,
                                            const TruthSidecar& truth);

}  // namespace jsoncdn::oracle
