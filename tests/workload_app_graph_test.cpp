#include "workload/app_graph.h"

#include <gtest/gtest.h>

#include <numeric>

namespace jsoncdn::workload {
namespace {

DomainSpec test_domain(double cacheable_share = 0.5) {
  DomainSpec d;
  d.name = "app.example";
  d.cacheable_share = cacheable_share;
  return d;
}

TEST(AppGraph, RowsAreStochastic) {
  ObjectCatalog catalog;
  AppGraph graph(test_domain(), catalog, {}, stats::Rng(1));
  for (const auto& row : graph.transitions()) {
    const double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (const double w : row) EXPECT_GE(w, 0.0);
  }
}

TEST(AppGraph, ManifestIsPlainGet) {
  ObjectCatalog catalog;
  AppGraph graph(test_domain(), catalog, {}, stats::Rng(2));
  EXPECT_EQ(graph.method_of(graph.manifest()), http::Method::kGet);
  EXPECT_FALSE(graph.is_parameterized(graph.manifest()));
  EXPECT_EQ(graph.urls_of(graph.manifest()).size(), 1u);
}

TEST(AppGraph, RegistersEveryUrlInCatalog) {
  ObjectCatalog catalog;
  AppGraphParams params;
  AppGraph graph(test_domain(), catalog, params, stats::Rng(3));
  std::size_t total_urls = 0;
  for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
    for (const auto& url : graph.urls_of(t)) {
      ++total_urls;
      const auto* obj = catalog.find(url);
      ASSERT_NE(obj, nullptr) << url;
      EXPECT_EQ(obj->content, http::ContentClass::kJson);
      EXPECT_EQ(obj->domain, "app.example");
    }
  }
  EXPECT_EQ(total_urls, catalog.size());
}

TEST(AppGraph, ParameterizedTemplatesHaveIdSpaceUrls) {
  ObjectCatalog catalog;
  AppGraphParams params;
  params.id_space = 17;
  AppGraph graph(test_domain(), catalog, params, stats::Rng(4));
  bool found_parameterized = false;
  for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
    if (graph.is_parameterized(t)) {
      found_parameterized = true;
      EXPECT_EQ(graph.urls_of(t).size(), 17u);
    } else {
      EXPECT_EQ(graph.urls_of(t).size(), 1u);
    }
  }
  EXPECT_TRUE(found_parameterized);
}

TEST(AppGraph, WalkStaysInGraph) {
  ObjectCatalog catalog;
  AppGraph graph(test_domain(), catalog, {}, stats::Rng(5));
  stats::Rng rng(6);
  std::size_t state = graph.manifest();
  for (int i = 0; i < 500; ++i) {
    state = graph.next_template(state, rng);
    ASSERT_LT(state, graph.endpoint_count());
    const auto& url = graph.instantiate(state, rng);
    EXPECT_NE(catalog.find(url), nullptr);
  }
}

TEST(AppGraph, NonParameterizedNeverSelfLoops) {
  ObjectCatalog catalog;
  AppGraph graph(test_domain(), catalog, {}, stats::Rng(7));
  const auto& transitions = graph.transitions();
  for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
    if (!graph.is_parameterized(t)) {
      EXPECT_DOUBLE_EQ(transitions[t][t], 0.0);
    }
  }
}

TEST(AppGraph, OracleAccuracyWithinConfiguredBand) {
  ObjectCatalog catalog;
  AppGraphParams params;
  params.top_transition_lo = 0.55;
  params.top_transition_hi = 0.75;
  AppGraph graph(test_domain(), catalog, params, stats::Rng(8));
  const double oracle = graph.oracle_top1_template_accuracy();
  EXPECT_GE(oracle, 0.50);
  EXPECT_LE(oracle, 0.80);
}

TEST(AppGraph, UploadEndpointsAreUncacheable) {
  ObjectCatalog catalog;
  AppGraphParams params;
  params.post_endpoint_share = 0.5;  // force plenty of uploads
  AppGraph graph(test_domain(1.0), catalog, params, stats::Rng(9));
  for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
    if (http::is_upload(graph.method_of(t))) {
      for (const auto& url : graph.urls_of(t)) {
        EXPECT_FALSE(catalog.find(url)->cacheable);
      }
    }
  }
}

TEST(AppGraph, DeterministicForSameSeed) {
  ObjectCatalog c1;
  ObjectCatalog c2;
  AppGraph a(test_domain(), c1, {}, stats::Rng(10));
  AppGraph b(test_domain(), c2, {}, stats::Rng(10));
  EXPECT_EQ(a.transitions(), b.transitions());
  for (std::size_t t = 0; t < a.endpoint_count(); ++t) {
    EXPECT_EQ(a.urls_of(t), b.urls_of(t));
  }
}

TEST(AppGraph, RejectsBadParameters) {
  ObjectCatalog catalog;
  AppGraphParams params;
  params.n_endpoints = 1;
  EXPECT_THROW(AppGraph(test_domain(), catalog, params, stats::Rng(1)),
               std::invalid_argument);
  params = {};
  params.id_space = 0;
  EXPECT_THROW(AppGraph(test_domain(), catalog, params, stats::Rng(1)),
               std::invalid_argument);
  params = {};
  params.top_transition_lo = 0.9;
  params.top_transition_hi = 0.8;
  EXPECT_THROW(AppGraph(test_domain(), catalog, params, stats::Rng(1)),
               std::invalid_argument);
  params = {};
  params.transition_decay = 1.0;
  EXPECT_THROW(AppGraph(test_domain(), catalog, params, stats::Rng(1)),
               std::invalid_argument);
}

TEST(AppGraph, AccessorsThrowOutOfRange) {
  ObjectCatalog catalog;
  AppGraph graph(test_domain(), catalog, {}, stats::Rng(11));
  stats::Rng rng(1);
  const auto n = graph.endpoint_count();
  EXPECT_THROW((void)graph.next_template(n, rng), std::out_of_range);
  EXPECT_THROW((void)graph.instantiate(n, rng), std::out_of_range);
  EXPECT_THROW((void)graph.method_of(n), std::out_of_range);
  EXPECT_THROW((void)graph.urls_of(n), std::out_of_range);
}

TEST(AppGraph, PopularIdsInstantiateMoreOften) {
  ObjectCatalog catalog;
  AppGraphParams params;
  params.id_zipf_s = 1.3;
  AppGraph graph(test_domain(), catalog, params, stats::Rng(12));
  // Find a parameterized template and sample it.
  for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
    if (!graph.is_parameterized(t)) continue;
    stats::Rng rng(13);
    std::map<std::string, int> counts;
    for (int i = 0; i < 5000; ++i) ++counts[graph.instantiate(t, rng)];
    // Top id (".../1000") should dominate the last one.
    const auto& urls = graph.urls_of(t);
    EXPECT_GT(counts[urls.front()], counts[urls.back()] * 3);
    break;
  }
}

}  // namespace
}  // namespace jsoncdn::workload
