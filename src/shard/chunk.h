// Compressed column-chunk codec for the `.jlog` v2 store.
//
// A chunk payload holds a fixed row range of every LogTable column,
// compressed independently, in this order:
//
//   timestamps      zigzag-delta varints of the f64 bit patterns — exact
//                   (bit-for-bit) for any double; time-clustered chunks
//                   make the deltas small
//   method          3-bit packed (7 enumerators)
//   cache_status    3-bit packed (6 enumerators)
//   status          zigzag-delta varints (runs of equal statuses cost
//                   one byte each)
//   response_bytes  zigzag-delta varints, modular u64 — u64 max round-trips
//   request_bytes   zigzag-delta varints
//   edge_id         zigzag-delta varints
//   6 symbol cols   zigzag-delta varints each, in dictionary order —
//                   symbols are file-global (the footer dictionaries)
//
// encode() also derives the chunk's zone map (min/max timestamp, min/max
// symbol per keyed column). decode() recomputes that zone map from the
// decoded rows and requires it to match the directory entry — so a zone
// map that lies about its chunk (both checksums intact) is rejected, and
// pruning decisions are trustworthy, not just memory-safe.
#pragma once

#include <string>
#include <string_view>

#include "logs/jlog.h"
#include "logs/table.h"
#include "shard/format.h"

namespace jsoncdn::shard {

// Fixed 92-byte directory-entry serialization (field-by-field, never struct
// memcpy — padding must not reach the file). The reader's bounds checks make
// a truncated directory throw before any entry is used.
void write_chunk_meta(logs::BinaryWriter& out, const ChunkMeta& meta);
[[nodiscard]] ChunkMeta read_chunk_meta(logs::BinaryReader& in);

// Friend of logs::LogTable — reads/fills columns directly, like the v1
// JlogReader, so no per-row accessor or interning cost on either side.
class ChunkCodec {
 public:
  // Encodes rows [begin, end) of `table`, appending the payload to `out`.
  // Returns the chunk's directory entry with row_count, zone map,
  // payload_bytes, and checksum filled in; the caller sets `offset`.
  [[nodiscard]] static ChunkMeta encode(const logs::LogTable& table,
                                        std::uint32_t begin, std::uint32_t end,
                                        std::string& out);

  // Decodes one payload, appending meta.row_count rows to `table`, whose
  // dictionaries must already hold every referenced symbol (the reader
  // loads them from the footer first). Fully validated: the payload must
  // decode to exactly row_count rows with no bytes left over, enums and
  // symbols must be in range, and the recomputed zone map must equal
  // `meta`. Throws std::runtime_error via logs::jlog_corrupt otherwise.
  static void decode(std::string_view payload, const ChunkMeta& meta,
                     logs::LogTable& table, const std::string& path);

  // Footer dictionaries, straight into/out of the table's interners (the
  // same block encoding .jlog v1 uses, via the shared read/write helpers).
  static void write_dictionaries(logs::BinaryWriter& out,
                                 const logs::LogTable& table);
  static void read_dictionaries(logs::BinaryReader& in, logs::LogTable& table,
                                const std::string& path);
};

}  // namespace jsoncdn::shard
