// One-pass periodicity triage: bounded per-flow inter-arrival state that
// emits *candidate* periodic flows, so the expensive FFT + permutation
// detector (core::analyze_periodicity, ~100 spectral passes per flow) runs
// on a small eligible subset instead of every object flow in the stream.
//
// The flow table is bounded: an internal Space-Saving sketch over flow keys
// is the admission policy — only the `max_flows` currently-heaviest flows
// carry detailed state (a sliding window over the heavy set; light flows
// can never pass the paper's >= 10-requests filter anyway, and a flow that
// falls out of the heavy set takes its state with it). Per-flow state is
// O(1): request count, first/last timestamp, mergeable inter-arrival
// moments (stats::RunningMoments), and a 256-bit linear-counting bitmap of
// client hashes for the paper's >= 10-distinct-clients filter.
//
// Candidates are flows passing the §5.1 eligibility filters plus a
// regularity screen (inter-arrival coefficient of variation and minimum
// span) mirroring the detector's own preconditions. The screen is a recall
// filter, not a detector: the FFT still decides periodicity.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/descriptive.h"
#include "stream/spacesaving.h"

namespace jsoncdn::stream {

struct TriageConfig {
  std::size_t max_flows = 4096;   // bounded flow table (heavy set size)
  std::size_t min_requests = 10;  // paper: client/object flow filter
  std::size_t min_clients = 10;   // paper: object flow filter
  // Regularity screen: aggregate inter-arrival CV above this is too bursty
  // to be worth an FFT. Aggregates of phase-offset periodic clients land
  // well below it; single-burst spikes land far above.
  double max_gap_cv = 2.5;
  // Mirrors the detector's "span > 4 * sample_interval" precondition.
  double min_span_seconds = 5.0;
};

struct CandidateFlow {
  std::string key;              // flow key (URL for object flows)
  std::uint64_t requests = 0;
  double span_seconds = 0.0;
  double mean_gap = 0.0;        // estimated period-ish scale
  double gap_cv = 0.0;
  double estimated_clients = 0.0;
};

class InterarrivalTriage {
 public:
  explicit InterarrivalTriage(const TriageConfig& config = {});

  // Offers one request of flow `key` by client `client_hash` at `timestamp`.
  // Timestamps must be non-decreasing within one triage instance (the log
  // stream is time-sorted; shard boundaries are handled by merge()).
  void offer(std::string_view key, std::uint64_t client_hash,
             double timestamp);

  // Merges a later shard's state (chunk-ordered: `other` covers records
  // after this instance's records).
  void merge(const InterarrivalTriage& other);

  // Flows passing every filter, requests descending, key ascending on ties.
  [[nodiscard]] std::vector<CandidateFlow> candidates() const;

  [[nodiscard]] const TriageConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t tracked_flows() const noexcept {
    return states_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct FlowState {
    std::uint64_t requests = 0;
    double first_ts = 0.0;
    double last_ts = 0.0;
    stats::RunningMoments gaps;
    // 256-bit client-presence bitmap; distinct clients estimated by linear
    // counting. Saturates gracefully far above the >= 10 filter.
    std::array<std::uint64_t, 4> client_bits{};

    void note_client(std::uint64_t client_hash) noexcept;
    [[nodiscard]] double estimated_clients() const noexcept;
  };

  TriageConfig config_;
  SpaceSaving heavy_;  // admission policy over flow keys
  std::unordered_map<std::string, FlowState> states_;
};

}  // namespace jsoncdn::stream
