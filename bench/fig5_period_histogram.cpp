// Figure 5: "Histogram of JSON object periods" + the Section 5.1 headline
// numbers: 6.3% of JSON requests periodic; periodic traffic 56.2%
// uncacheable and 78% upload. Runs the full permutation-test detector over
// the long-term scenario.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "core/study.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.003;
  bench::print_header("Figure 5 / Section 5.1",
                      "JSON object period histogram (long-term)");

  core::StudyConfig config;
  config.workload = workload::long_term_scenario(scale);
  config.run_characterization = false;
  config.run_periodicity = true;
  const auto result = core::run_study(config);
  const auto& report = *result.periodicity;

  std::fputs(core::render_period_histogram(report.object_periods).c_str(),
             stdout);
  std::printf("\n");
  std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
  std::printf("\n");
  bench::compare("periodic share of JSON requests", 0.063,
                 report.periodic_request_share);
  bench::compare("periodic traffic uncacheable share", 0.562,
                 report.periodic_uncacheable_share);
  bench::compare("periodic traffic upload share", 0.78,
                 report.periodic_upload_share);
  bench::note("paper: spikes at even intervals (30s, 1m, 2m, 3m, 10m, 15m, "
              "30m).");
  return 0;
}
