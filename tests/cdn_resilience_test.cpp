// Edge resilience against a failing origin: bounded retry with backoff,
// RFC 5861 stale-if-error, negative caching of origin failures, timeout
// budgets, and the per-origin circuit breaker. Fault sequences come from
// the deterministic faults::FaultPlan, so every scenario replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cdn/edge.h"
#include "cdn/origin.h"
#include "faults/breaker.h"
#include "faults/plan.h"

namespace jsoncdn::cdn {
namespace {

constexpr char kUrl[] = "https://d/x";

// Mines a seed whose per-request draw sequence for the test origin matches
// `wanted` (one FaultOutcome per successive request ordinal). decide() is a
// pure function, so the search is cheap and the found seed is stable.
std::uint64_t find_seed(const faults::FaultPlanConfig& base,
                        const std::vector<faults::FaultOutcome>& wanted) {
  for (std::uint64_t seed = 1; seed < 200'000; ++seed) {
    faults::FaultPlanConfig config = base;
    config.seed = seed;
    const faults::FaultPlan plan(config);
    bool ok = true;
    for (std::size_t k = 0; k < wanted.size(); ++k) {
      if (plan.decide("d", k, 0.0).outcome != wanted[k]) {
        ok = false;
        break;
      }
    }
    if (ok) return seed;
  }
  ADD_FAILURE() << "no seed found for requested fault sequence";
  return 0;
}

class ResilienceFixture : public ::testing::Test {
 protected:
  void make_edge(const faults::FaultPlanConfig& faults,
                 const EdgeParams& params = {}) {
    workload::ObjectSpec obj;
    obj.url = kUrl;
    obj.domain = "d";
    obj.content_type = "application/json";
    obj.cacheable = true;
    obj.ttl_seconds = 60.0;
    obj.body_bytes = 100'000;
    catalog_.add(obj);

    plan_ = std::make_unique<faults::FaultPlan>(faults);
    origin_ = std::make_unique<Origin>(catalog_, OriginParams{});
    origin_->set_fault_plan(plan_.get());
    anonymizer_ = std::make_unique<logs::Anonymizer>(9);
    edge_ = std::make_unique<EdgeServer>(0, *origin_, *anonymizer_, params);
  }

  static workload::RequestEvent request(double t) {
    workload::RequestEvent ev;
    ev.time = t;
    ev.client_address = "10.0.0.1";
    ev.user_agent = "ua";
    ev.url = kUrl;
    return ev;
  }

  workload::ObjectCatalog catalog_;
  std::unique_ptr<faults::FaultPlan> plan_;
  std::unique_ptr<Origin> origin_;
  std::unique_ptr<logs::Anonymizer> anonymizer_;
  std::unique_ptr<EdgeServer> edge_;
};

TEST_F(ResilienceFixture, RetryRescuesTransientError) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 0.5;
  base.seed = find_seed(
      base, {faults::FaultOutcome::kError, faults::FaultOutcome::kOk});
  make_edge(base);

  const auto record = edge_->handle(request(0.0));
  EXPECT_EQ(record.cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(record.status, 200);

  const auto& r = edge_->resilience();
  EXPECT_EQ(r.origin_errors, 1u);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_EQ(r.retry_successes, 1u);
  EXPECT_EQ(r.error_responses, 0u);
  EXPECT_GT(r.backoff_seconds, 0.0);
  EXPECT_EQ(edge_->metrics().errors(), 0u);
  // Both attempts hit the origin.
  EXPECT_EQ(origin_->fetch_count(), 2u);
}

TEST_F(ResilienceFixture, StaleIfErrorServesExpiredCopy) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 0.5;
  // First request (cache fill) healthy; the refill attempt and both retries
  // fail, exhausting the default budget of 2 retries.
  base.seed = find_seed(
      base, {faults::FaultOutcome::kOk, faults::FaultOutcome::kError,
             faults::FaultOutcome::kError, faults::FaultOutcome::kError});
  make_edge(base);

  const auto first = edge_->handle(request(0.0));
  ASSERT_EQ(first.cache_status, logs::CacheStatus::kMiss);

  // Past TTL with the origin down: the expired copy is served, not the 5xx.
  const auto second = edge_->handle(request(61.0));
  EXPECT_EQ(second.cache_status, logs::CacheStatus::kStale);
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.response_bytes, 100'000u);

  const auto& r = edge_->resilience();
  EXPECT_EQ(r.stale_served, 1u);
  EXPECT_EQ(r.origin_errors, 3u);  // attempt + 2 retries
  EXPECT_EQ(r.error_responses, 0u);
  // Stale counts as a hit: the bytes came from CDN storage.
  EXPECT_EQ(edge_->metrics().hits(), 1u);
}

TEST_F(ResilienceFixture, NegativeCacheShortCircuitsRepeatFailures) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 0.5;
  base.seed = find_seed(
      base, {faults::FaultOutcome::kError, faults::FaultOutcome::kError,
             faults::FaultOutcome::kError});
  EdgeParams params;
  params.resilience.serve_stale_on_error = false;
  make_edge(base, params);

  const auto first = edge_->handle(request(0.0));
  EXPECT_EQ(first.cache_status, logs::CacheStatus::kError);
  EXPECT_GE(first.status, 500);
  EXPECT_EQ(first.response_bytes, 0u);
  const auto fetches_after_first = origin_->fetch_count();
  EXPECT_EQ(fetches_after_first, 3u);  // attempt + 2 retries

  // Within the negative TTL: answered from the remembered failure, origin
  // untouched.
  const auto second = edge_->handle(request(1.0));
  EXPECT_EQ(second.cache_status, logs::CacheStatus::kError);
  EXPECT_EQ(second.status, first.status);
  EXPECT_EQ(origin_->fetch_count(), fetches_after_first);

  const auto& r = edge_->resilience();
  EXPECT_EQ(r.negative_cache_hits, 1u);
  EXPECT_EQ(r.error_responses, 2u);
  EXPECT_EQ(edge_->metrics().errors(), 2u);
}

TEST_F(ResilienceFixture, BreakerOpensAndShortCircuits) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 1.0;  // origin is down for good
  base.seed = 7;
  EdgeParams params;
  params.resilience.retry.max_retries = 0;  // one attempt per request
  params.resilience.serve_stale_on_error = false;
  params.resilience.negative_ttl_seconds = 0.0;  // isolate the breaker
  params.resilience.breaker.failure_threshold = 3;
  params.resilience.breaker.open_seconds = 30.0;
  make_edge(base, params);

  for (int i = 0; i < 3; ++i) {
    const auto record = edge_->handle(request(static_cast<double>(i)));
    EXPECT_EQ(record.cache_status, logs::CacheStatus::kError);
  }
  const auto fetches_when_tripped = origin_->fetch_count();
  EXPECT_EQ(fetches_when_tripped, 3u);
  EXPECT_EQ(edge_->resilience().breaker_trips, 1u);

  // Open breaker: failed fast, origin untouched.
  const auto shorted = edge_->handle(request(3.0));
  EXPECT_EQ(shorted.cache_status, logs::CacheStatus::kError);
  EXPECT_EQ(shorted.status, 503);
  EXPECT_EQ(origin_->fetch_count(), fetches_when_tripped);
  EXPECT_EQ(edge_->resilience().breaker_short_circuits, 1u);

  const auto timeline = edge_->breaker_timeline();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].domain, "d");
  EXPECT_EQ(timeline[0].transition.from, faults::BreakerState::kClosed);
  EXPECT_EQ(timeline[0].transition.to, faults::BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(timeline[0].transition.time, 2.0);
}

TEST_F(ResilienceFixture, TimeoutChargesBudgetNotOriginLatency) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.timeout_rate = 1.0;
  base.seed = 7;
  EdgeParams params;
  params.resilience.retry.max_retries = 0;
  params.resilience.serve_stale_on_error = false;
  params.resilience.timeout_seconds = 1.5;
  make_edge(base, params);

  const auto record = edge_->handle(request(0.0));
  EXPECT_EQ(record.status, 504);
  EXPECT_EQ(record.cache_status, logs::CacheStatus::kError);
  EXPECT_EQ(edge_->resilience().timeouts, 1u);

  const auto& latencies = edge_->metrics().latencies();
  ASSERT_EQ(latencies.size(), 1u);
  // client RTT + the full timeout budget, not the origin's internal latency.
  EXPECT_DOUBLE_EQ(latencies[0], 0.020 + 1.5);
}

TEST_F(ResilienceFixture, TruncatedBodiesAreRetriedThen502) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.truncate_rate = 1.0;
  base.seed = 7;
  EdgeParams params;
  params.resilience.serve_stale_on_error = false;
  make_edge(base, params);

  const auto record = edge_->handle(request(0.0));
  EXPECT_EQ(record.status, 502);
  EXPECT_EQ(record.cache_status, logs::CacheStatus::kError);
  EXPECT_EQ(edge_->resilience().truncated_bodies, 3u);  // attempt + 2 retries
  EXPECT_EQ(edge_->resilience().retries, 2u);
}

TEST_F(ResilienceFixture, ErrorRecordsKeepDomainAndContentType) {
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 1.0;
  base.seed = 7;
  EdgeParams params;
  params.resilience.serve_stale_on_error = false;
  make_edge(base, params);

  const auto record = edge_->handle(request(0.0));
  ASSERT_EQ(record.cache_status, logs::CacheStatus::kError);
  // The analyses' JSON filters must still see the failed request.
  EXPECT_EQ(record.domain, "d");
  EXPECT_EQ(record.content_type, "application/json");
}

TEST_F(ResilienceFixture, DisabledPlanTouchesNothing) {
  faults::FaultPlanConfig off;  // enabled == false, rates irrelevant
  off.error_rate = 1.0;
  make_edge(off);

  const auto first = edge_->handle(request(0.0));
  const auto second = edge_->handle(request(1.0));
  EXPECT_EQ(first.cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(second.cache_status, logs::CacheStatus::kHit);
  EXPECT_FALSE(edge_->resilience().any_activity());
  EXPECT_TRUE(edge_->breaker_timeline().empty());
  EXPECT_EQ(origin_->faults_injected(), 0u);
}

// ---- CircuitBreaker state machine, driven directly ------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  faults::BreakerConfig config;
  config.failure_threshold = 3;
  faults::CircuitBreaker breaker(config);

  breaker.record_failure(0.0);
  breaker.record_failure(1.0);
  breaker.record_success(2.0);  // resets the streak
  breaker.record_failure(3.0);
  breaker.record_failure(4.0);
  EXPECT_EQ(breaker.state(4.0), faults::BreakerState::kClosed);
  breaker.record_failure(5.0);
  EXPECT_EQ(breaker.state(5.0), faults::BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, OpenRefusesUntilCoolingOffThenProbes) {
  faults::BreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 10.0;
  config.half_open_successes = 2;
  faults::CircuitBreaker breaker(config);

  breaker.record_failure(0.0);
  EXPECT_FALSE(breaker.allow(5.0));
  EXPECT_EQ(breaker.state(5.0), faults::BreakerState::kOpen);

  // Cooling-off elapsed: probes allowed, state half-open.
  EXPECT_TRUE(breaker.allow(10.5));
  EXPECT_EQ(breaker.state(10.5), faults::BreakerState::kHalfOpen);

  breaker.record_success(11.0);
  EXPECT_EQ(breaker.state(11.0), faults::BreakerState::kHalfOpen);
  breaker.record_success(11.5);
  EXPECT_EQ(breaker.state(11.5), faults::BreakerState::kClosed);

  const auto& timeline = breaker.timeline();
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].to, faults::BreakerState::kOpen);
  EXPECT_EQ(timeline[1].to, faults::BreakerState::kHalfOpen);
  EXPECT_EQ(timeline[2].to, faults::BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  faults::BreakerConfig config;
  config.failure_threshold = 1;
  config.open_seconds = 10.0;
  faults::CircuitBreaker breaker(config);

  breaker.record_failure(0.0);
  ASSERT_TRUE(breaker.allow(10.5));  // half-open probe
  breaker.record_failure(11.0);
  EXPECT_EQ(breaker.state(11.0), faults::BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(11.5));
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, RejectsSenselessConfig) {
  faults::BreakerConfig config;
  config.failure_threshold = 0;
  EXPECT_THROW(faults::CircuitBreaker{config}, std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::cdn
