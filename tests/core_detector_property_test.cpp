// Property grid for the periodicity detector: recall across dropout levels
// and flow lengths, false-positive control across noise processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/periodicity.h"
#include "stats/rng.h"

namespace jsoncdn::core {
namespace {

std::vector<double> planted(double period, std::size_t ticks, double jitter,
                            double dropout, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < ticks; ++i) {
    if (dropout > 0.0 && rng.bernoulli(dropout)) continue;
    times.push_back(period * static_cast<double>(i) +
                    rng.normal(0.0, jitter));
  }
  std::sort(times.begin(), times.end());
  return times;
}

struct GridCase {
  double dropout;
  std::size_t ticks;
};

class DetectorDropoutTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(DetectorDropoutTest, RecallSurvivesDropout) {
  const auto [dropout, ticks] = GetParam();
  PeriodicityDetector detector({});
  int detected = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto times =
        planted(60.0, ticks, 0.4, dropout, 1000 + static_cast<unsigned>(t));
    if (times.size() < 10) continue;
    stats::Rng rng(2000 + static_cast<unsigned>(t));
    const auto result = detector.detect(times, rng);
    if (result.periodic &&
        std::abs(result.period_seconds - 60.0) <= 60.0 * 0.15) {
      ++detected;
    }
  }
  // Even at 20% dropout the comb structure dominates; expect most trials in.
  EXPECT_GE(detected, trials - 2) << "dropout=" << dropout;
}

INSTANTIATE_TEST_SUITE_P(DropoutGrid, DetectorDropoutTest,
                         ::testing::Values(GridCase{0.0, 30},
                                           GridCase{0.05, 30},
                                           GridCase{0.10, 40},
                                           GridCase{0.20, 50}));

class DetectorNoiseTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorNoiseTest, BurstyTrafficFlagsBurstRecurrenceScale) {
  // Documented limitation shared with the paper's method: an iid-shuffle
  // null cannot distinguish burst *recurrence* from true periodicity, so
  // on/off traffic is typically flagged. What the detector must NOT do is
  // invent an arbitrary period — when it fires, the period sits at the
  // burst-recurrence scale, never inside a burst.
  stats::Rng gen(GetParam());
  std::vector<double> times;
  double t = 0.0;
  for (int burst = 0; burst < 6; ++burst) {
    const double burst_len = gen.uniform(30.0, 120.0);
    const double end = t + burst_len;
    while (t < end) {
      t += gen.exponential(1.0);
      times.push_back(t);
    }
    t += gen.uniform(200.0, 700.0);  // silence
  }
  PeriodicityDetector detector({});
  stats::Rng rng(GetParam() + 99);
  const auto result = detector.detect(times, rng);
  if (result.periodic) {
    EXPECT_GT(result.period_seconds, 150.0) << "seed " << GetParam();
    EXPECT_LT(result.period_seconds, 1200.0) << "seed " << GetParam();
  }
}

TEST_P(DetectorNoiseTest, UniformRandomTimesRejected) {
  stats::Rng gen(GetParam());
  std::vector<double> times;
  for (int i = 0; i < 60; ++i) times.push_back(gen.uniform(0.0, 3600.0));
  std::sort(times.begin(), times.end());
  PeriodicityDetector detector({});
  stats::Rng rng(GetParam() + 7);
  EXPECT_FALSE(detector.detect(times, rng).periodic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorNoiseTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(DetectorProperty, PeriodRecoveryScalesWithPeriod) {
  // Relative error stays bounded across two orders of magnitude of period.
  PeriodicityDetector detector({});
  for (const double period : {20.0, 60.0, 240.0, 1200.0}) {
    const auto times = planted(period, 40, period * 0.01, 0.02, 77);
    stats::Rng rng(78);
    const auto result = detector.detect(times, rng);
    ASSERT_TRUE(result.periodic) << period;
    EXPECT_NEAR(result.period_seconds, period, period * 0.15) << period;
  }
}

TEST(DetectorProperty, ThresholdsReportedOnDetection) {
  const auto times = planted(60.0, 40, 0.3, 0.0, 5);
  PeriodicityDetector detector({});
  stats::Rng rng(6);
  const auto result = detector.detect(times, rng);
  ASSERT_TRUE(result.periodic);
  EXPECT_GT(result.acf_peak_value, result.acf_threshold);
  EXPECT_GT(result.periodogram_power, result.power_threshold);
  EXPECT_GT(result.acf_threshold, 0.0);
}

}  // namespace
}  // namespace jsoncdn::core
