// Google-benchmark microbenchmarks for the hot paths: FFT/ACF (periodicity
// inner loop), ngram training/prediction, edge cache operations, UA
// classification, URL parsing/clustering, and log (de)serialization — plus
// a wall-clock speedup report (1 thread vs N) for the parallel periodicity
// and ngram stages, printed after the benchmark table.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "bench_util.h"
#include "cdn/cache.h"
#include "cdn/network.h"
#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "core/url_cluster.h"
#include "http/device_db.h"
#include "http/url.h"
#include "logs/csv.h"
#include "stats/autocorrelation.h"
#include "stats/fft.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "stream/streaming_study.h"
#include "workload/scenario.h"

namespace {

using namespace jsoncdn;

std::vector<double> random_signal(std::size_t n) {
  stats::Rng rng(n);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(0.0, 2.0);
  return out;
}

void BM_FftReal(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fft_real(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftReal)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_SpectralAnalysis(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::spectral_analysis(signal, signal.size() / 3));
  }
}
BENCHMARK(BM_SpectralAnalysis)->RangeMultiplier(4)->Range(256, 16384);

void BM_DetectPeriodicFlow(benchmark::State& state) {
  stats::Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 40; ++i)
    times.push_back(60.0 * i + rng.normal(0.0, 0.4));
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(11);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPeriodicFlow);

void BM_DetectPoissonFlowEarlyExit(benchmark::State& state) {
  stats::Rng rng(8);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(1.0 / 60.0);
    times.push_back(t);
  }
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(12);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPoissonFlowEarlyExit);

void BM_NgramObserve(benchmark::State& state) {
  std::vector<std::string> tokens;
  for (int i = 0; i < 64; ++i)
    tokens.push_back("https://h/api/v1/x/" + std::to_string(i % 12));
  for (auto _ : state) {
    core::NgramModel model(2);
    model.observe_sequence(tokens);
    benchmark::DoNotOptimize(model.observed_transitions());
  }
}
BENCHMARK(BM_NgramObserve);

void BM_NgramPredictTop10(benchmark::State& state) {
  core::NgramModel model(2);
  stats::Rng rng(5);
  std::vector<std::string> tokens;
  for (int i = 0; i < 5000; ++i) {
    tokens.push_back("https://h/api/v1/x/" +
                     std::to_string(rng.uniform_int(0, 50)));
  }
  model.observe_sequence(tokens);
  const std::vector<std::string> history = {tokens[100], tokens[101]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(history, 10));
  }
}
BENCHMARK(BM_NgramPredictTop10);

void BM_CacheInsertLookup(benchmark::State& state) {
  cdn::LruCache cache(64ULL * 1024 * 1024);
  stats::Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i)
    keys.push_back("https://h/obj/" + std::to_string(i));
  std::size_t i = 0;
  double now = 0.0;
  for (auto _ : state) {
    now += 0.001;
    const auto& key = keys[i++ & 4095];
    if (!cache.lookup(key, now)) cache.insert(key, 20'000, 600.0, now);
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_ClassifyDevice(benchmark::State& state) {
  constexpr std::string_view kUa =
      "Mozilla/5.0 (Linux; Android 9; SM-G960F) AppleWebKit/537.36 (KHTML, "
      "like Gecko) Chrome/76.0.3809.132 Mobile Safari/537.36";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::classify_device(kUa));
  }
}
BENCHMARK(BM_ClassifyDevice);

void BM_ParseUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::parse_url(kUrl));
  }
}
BENCHMARK(BM_ParseUrl);

void BM_ClusterUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster_url(kUrl));
  }
}
BENCHMARK(BM_ClusterUrl);

void BM_LogLineRoundTrip(benchmark::State& state) {
  logs::LogRecord record;
  record.timestamp = 1234.567;
  record.client_id = "deadbeefdeadbeef";
  record.user_agent = "NewsReader/5.2.1 (iPhone; iOS 12.4.1; Scale/3.00)";
  record.url = "https://api.news-003.example/api/v1/article/18234";
  record.domain = "api.news-003.example";
  record.content_type = "application/json; charset=utf-8";
  record.response_bytes = 2048;
  for (auto _ : state) {
    benchmark::DoNotOptimize(logs::from_line(logs::to_line(record)));
  }
}
BENCHMARK(BM_LogLineRoundTrip);

// ---- Parallel stage speedup (wall clock, 1 thread vs N) -------------------

// Synthetic dataset dense enough to pass the paper's flow filter: a mix of
// periodic objects (the expensive full-permutation path) and Poisson objects
// (the cheap early-exit path), mirroring the real workload's skew.
logs::Dataset make_periodicity_dataset(std::size_t periodic_objects,
                                       std::size_t poisson_objects) {
  stats::Rng rng(2024);
  logs::Dataset ds;
  const std::size_t clients = 12;
  const std::size_t requests = 24;
  auto add_flow = [&](const std::string& url, std::size_t c,
                      double t) {
    logs::LogRecord record;
    record.timestamp = t;
    record.client_id = "client" + std::to_string(c);
    record.user_agent = "NewsReader/5.2";
    record.url = url;
    record.domain = "api.bench.example";
    record.content_type = "application/json";
    record.response_bytes = 2048;
    record.cache_status = logs::CacheStatus::kNotCacheable;
    ds.add(std::move(record));
  };
  for (std::size_t o = 0; o < periodic_objects; ++o) {
    const std::string url =
        "https://api.bench.example/poll/" + std::to_string(o);
    const double period = 30.0 + static_cast<double>(o % 5) * 15.0;
    for (std::size_t c = 0; c < clients; ++c) {
      const double phase = rng.uniform(0.0, period);
      for (std::size_t r = 0; r < requests; ++r) {
        add_flow(url, c,
                 phase + static_cast<double>(r) * period +
                     rng.normal(0.0, 0.3));
      }
    }
  }
  for (std::size_t o = 0; o < poisson_objects; ++o) {
    const std::string url =
        "https://api.bench.example/feed/" + std::to_string(o);
    for (std::size_t c = 0; c < clients; ++c) {
      double t = rng.uniform(0.0, 60.0);
      for (std::size_t r = 0; r < requests; ++r) {
        t += rng.exponential(1.0 / 45.0);
        add_flow(url, c, t);
      }
    }
  }
  ds.sort_by_time();
  return ds;
}

// Per-client request sequences with Zipf-ish repeat structure so the ngram
// model has something to learn.
logs::Dataset make_ngram_dataset(std::size_t n_clients,
                                 std::size_t requests_per_client) {
  stats::Rng rng(7);
  logs::Dataset ds;
  for (std::size_t c = 0; c < n_clients; ++c) {
    double t = rng.uniform(0.0, 10.0);
    std::int64_t page = rng.uniform_int(0, 49);
    for (std::size_t r = 0; r < requests_per_client; ++r) {
      // Mostly-deterministic walk with occasional jumps: predictable
      // transitions dominate, like app-driven request sequences.
      page = rng.bernoulli(0.7) ? (page + 1) % 50 : rng.uniform_int(0, 49);
      t += rng.exponential(1.0 / 5.0);
      logs::LogRecord record;
      record.timestamp = t;
      record.client_id = "client" + std::to_string(c);
      record.user_agent = "NewsReader/5.2";
      record.url = "https://api.bench.example/api/v1/page/" +
                   std::to_string(page);
      record.domain = "api.bench.example";
      record.content_type = "application/json";
      record.response_bytes = 1024;
      ds.add(std::move(record));
    }
  }
  ds.sort_by_time();
  return ds;
}

void report_parallel_speedup() {
  const std::size_t n_threads = 4;
  bench::print_header(
      "parallel speedup",
      "analysis stages, 1 thread vs " + std::to_string(n_threads) +
          " (hardware_concurrency = " +
          std::to_string(std::thread::hardware_concurrency()) + ")");

  {
    const auto ds = make_periodicity_dataset(24, 24);
    core::PeriodicityConfig config;
    auto run_with = [&](std::size_t threads) {
      config.threads = threads;
      bench::Timer timer;
      const auto report = core::analyze_periodicity(ds, config);
      const double elapsed = timer.seconds();
      if (report.objects.empty()) bench::note("warning: no flows analyzed");
      return elapsed;
    };
    run_with(1);  // warm-up: page in the dataset, stabilize the comparison
    const double serial = run_with(1);
    const double parallel = run_with(n_threads);
    bench::print_speedup("analyze_periodicity", serial, parallel, n_threads);
  }

  {
    const auto ds = make_ngram_dataset(4000, 60);
    core::NgramEvalConfig config;
    config.context_len = 2;
    auto run_with = [&](std::size_t threads) {
      config.threads = threads;
      bench::Timer timer;
      const auto accuracy = core::evaluate_ngram(ds, config);
      const double elapsed = timer.seconds();
      if (accuracy.predictions == 0) bench::note("warning: no predictions");
      return elapsed;
    };
    run_with(1);
    const double serial = run_with(1);
    const double parallel = run_with(n_threads);
    bench::print_speedup("evaluate_ngram", serial, parallel, n_threads);
  }
}

// ---- Streaming vs batch (throughput + analysis-state memory) --------------

// Approximate resident footprint of a materialized dataset: the record
// structs plus their heap-allocated string payloads.
std::size_t dataset_bytes(const logs::Dataset& ds) {
  std::size_t bytes = ds.size() * sizeof(logs::LogRecord);
  for (const auto& r : ds.records()) {
    bytes += r.client_id.capacity() + r.user_agent.capacity() +
             r.url.capacity() + r.domain.capacity() +
             r.content_type.capacity();
  }
  return bytes;
}

void report_streaming_vs_batch() {
  bench::print_header(
      "streaming vs batch",
      "one-pass sketches vs exact characterization at 1x / 10x / 100x");
  const auto base = make_periodicity_dataset(8, 8);
  const double span =
      base.time_range().second - base.time_range().first + 1.0;
  bench::note("base workload: " + std::to_string(base.size()) + " records");

  for (const std::size_t scale : {std::size_t{1}, std::size_t{10},
                                  std::size_t{100}}) {
    // Streaming: chunks generated on the fly, so peak memory is the sketch
    // state plus one chunk — the production shape.
    stream::StreamingConfig config;
    config.threads = 4;
    stream::StreamingStudy study(config);
    std::vector<logs::LogRecord> chunk;
    bench::Timer stream_timer;
    for (std::size_t rep = 0; rep < scale; ++rep) {
      chunk = base.records();
      for (auto& r : chunk) r.timestamp += span * static_cast<double>(rep);
      study.ingest(chunk);
    }
    const auto summary = study.summary();
    const double stream_seconds = stream_timer.seconds();

    // Batch: materialize the scaled dataset, then run the exact analyses
    // the summary mirrors.
    logs::Dataset scaled;
    scaled.reserve(base.size() * scale);
    for (std::size_t rep = 0; rep < scale; ++rep) {
      for (auto r : base.records()) {
        r.timestamp += span * static_cast<double>(rep);
        scaled.add(std::move(r));
      }
    }
    bench::Timer batch_timer;
    const auto json = scaled.json_only();
    benchmark::DoNotOptimize(core::characterize_methods(json, 4));
    benchmark::DoNotOptimize(core::characterize_cacheability(json, 4));
    benchmark::DoNotOptimize(core::characterize_source(json, 4));
    benchmark::DoNotOptimize(core::compare_sizes(scaled, 4));
    benchmark::DoNotOptimize(json.distinct_objects());
    benchmark::DoNotOptimize(json.distinct_clients());
    const double batch_seconds = batch_timer.seconds();
    const std::size_t batch_bytes = dataset_bytes(scaled) +
                                    dataset_bytes(json);

    const auto records = static_cast<double>(summary.total_records);
    std::printf(
        "  %4zux (%8llu records)  streaming: %6.2f Mrec/s %6zu KiB state"
        "   batch: %6.2f Mrec/s %8zu KiB state\n",
        scale, static_cast<unsigned long long>(summary.total_records),
        records / stream_seconds / 1e6, summary.memory_bytes / 1024,
        records / batch_seconds / 1e6, batch_bytes / 1024);
  }
  bench::note(
      "streaming state is the sketch footprint (flat in the record count); "
      "batch state is the materialized datasets the exact analyses need");
}

// ---- Edge throughput under origin faults ----------------------------------

// The resilience layer (retry/backoff, stale-if-error, negative cache,
// breaker) only runs on origin failures, so its cost must scale with the
// fault rate and be zero at 0%. This section measures edge throughput,
// cache-hit ratio, and the error share actually reaching clients at 0%, 1%,
// and 10% origin failure — the EXPERIMENTS.md fault table comes from here.
void report_fault_resilience() {
  bench::print_header(
      "edge resilience",
      "simulated edge throughput vs deterministic origin fault rate");
  workload::WorkloadGenerator generator(workload::short_term_scenario(0.01, 42));
  const auto workload = generator.generate();
  double horizon = 0.0;
  for (const auto& event : workload.events)
    horizon = std::max(horizon, event.time);
  bench::note("workload: " + std::to_string(workload.events.size()) +
              " requests");

  for (const double rate : {0.0, 0.01, 0.10}) {
    cdn::NetworkParams params;
    if (rate > 0.0) {
      params.faults.enabled = true;
      params.faults.seed = 1337;
      params.faults.error_rate = 0.6 * rate;
      params.faults.timeout_rate = 0.2 * rate;
      params.faults.truncate_rate = 0.1 * rate;
      params.faults.latency_spike_rate = 0.1 * rate;
      params.faults.horizon_seconds = horizon + 1.0;
    }
    cdn::CdnNetwork network(generator.catalog().objects(), params);
    bench::Timer timer;
    const auto dataset = network.run(workload.events);
    const double seconds = timer.seconds();

    const auto metrics = network.total_metrics();
    const auto resilience = network.total_resilience();
    const double requests = static_cast<double>(metrics.requests());
    const double error_share =
        requests == 0.0 ? 0.0
                        : static_cast<double>(metrics.errors()) / requests;
    std::printf(
        "  fault rate %5.1f%%  %6.2f Mreq/s   hit ratio %5.3f   "
        "error share %6.4f   stale served %llu   retries %llu   "
        "breaker trips %llu\n",
        100.0 * rate, requests / seconds / 1e6,
        metrics.overall_hit_ratio(), error_share,
        static_cast<unsigned long long>(resilience.stale_served),
        static_cast<unsigned long long>(resilience.retries),
        static_cast<unsigned long long>(resilience.breaker_trips));
    benchmark::DoNotOptimize(dataset.size());
  }
  bench::note(
      "error share counts responses no resilience mechanism could absorb; "
      "the gap to the injected rate is retries + stale-if-error");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_parallel_speedup();
  report_streaming_vs_batch();
  report_fault_resilience();
  return 0;
}
