// Descriptive statistics: summary moments, percentiles, histograms, and
// empirical CDFs. These back every "Figure N" reproduction — the paper's
// figures are histograms (Fig. 5), CDFs (Fig. 6), ratios over time (Fig. 1),
// and percentile comparisons (§4 response sizes).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jsoncdn::stats {

// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population stddev (divides by n)
  double min = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Computes a Summary; an empty sample yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

// Single-pass mean/variance accumulator (Welford), mergeable across shards
// via Chan et al.'s pairwise-update formula. O(1) state — the streaming
// layer keeps one per tracked flow. merge() is deterministic for a fixed
// merge order (floating point), matching the chunk-ordered reduce contract.
class RunningMoments {
 public:
  void add(double x) noexcept;
  void merge(const RunningMoments& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  // Population variance (divides by n), matching summarize().
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  // stddev / mean; 0 when the mean is 0.
  [[nodiscard]] double coefficient_of_variation() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Percentile by linear interpolation between closest ranks; q in [0, 1].
// Requires a non-empty sample. The input need not be sorted.
[[nodiscard]] double percentile(std::span<const double> values, double q);
// Same, but assumes `sorted` is ascending (no copy, O(1)).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

// Fixed-width histogram over [lo, hi) with `bins` equal bins. Values outside
// the range are counted in underflow/overflow, never silently dropped.
class Histogram {
 public:
  // Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_n(double value, std::uint64_t n);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  // Inclusive lower edge of `bin`.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  // Exclusive upper edge of `bin`.
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  // Midpoint of `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  // Index of the fullest bin (ties broken toward lower index). Requires at
  // least one in-range observation.
  [[nodiscard]] std::size_t mode_bin() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// Empirical CDF: built once from a sample, then queried.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);

  // P(X <= x) under the empirical distribution.
  [[nodiscard]] double at(double x) const;
  // Inverse CDF (quantile), q in [0, 1]. Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_values() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

// (x, y) series point used by figure renderers.
struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

// Renders a horizontal ASCII bar chart of labelled values — the benches use
// this to print paper figures in the terminal. `width` is the bar length of
// the maximum value.
[[nodiscard]] std::string ascii_bar_chart(
    const std::vector<std::pair<std::string, double>>& rows,
    std::size_t width = 50);

}  // namespace jsoncdn::stats
