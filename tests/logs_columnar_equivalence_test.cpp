// The columnar determinism contract, end to end: every analysis that takes a
// TableView must render byte-for-byte the same report as the Dataset overload
// on the same records — flow extraction, characterization, periodicity,
// n-gram accuracy, and the streaming pipeline. This is what lets the tools
// swap ingestion paths without changing a single published figure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "logs/dataset.h"
#include "logs/table.h"
#include "stats/rng.h"
#include "stream/streaming_study.h"

namespace jsoncdn {
namespace {

logs::LogRecord make_record(double ts, const std::string& client,
                            const std::string& ua, const std::string& url,
                            const std::string& domain, bool json,
                            std::uint64_t bytes, logs::CacheStatus cache,
                            http::Method method, int status) {
  logs::LogRecord r;
  r.timestamp = ts;
  r.client_id = client;
  r.user_agent = ua;
  r.method = method;
  r.url = url;
  r.domain = domain;
  r.content_type =
      json ? "application/json; charset=utf-8" : "text/html; charset=utf-8";
  r.status = status;
  r.response_bytes = bytes;
  r.request_bytes = method == http::Method::kPost ? 300 : 0;
  r.cache_status = cache;
  r.edge_id = 1;
  return r;
}

// Structured traffic: periodic polling flows (so the detector finds real
// periods), a heavy aperiodic flow, a long tail, mixed UAs (so the source
// breakdown has several device classes), HTML traffic, and some errors.
logs::Dataset make_traffic() {
  logs::Dataset ds;
  stats::Rng rng(515);
  const std::vector<std::string> uas = {
      "NewsReader/5.2.1 (iPhone; iOS 12.4.1)",
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/76.0",
      "Mozilla/5.0 (Linux; Android 9; SM-G960F) Mobile Safari/537.36",
      "python-requests/2.22.0",
      "",
  };
  for (int flow = 0; flow < 3; ++flow) {
    const std::string url =
        "https://api.equiv.example/poll/" + std::to_string(flow);
    std::vector<double> phase(16);
    for (auto& p : phase) p = rng.uniform(0.0, 30.0);
    for (int tick = 0; tick < 24; ++tick) {
      for (int c = 0; c < 16; ++c) {
        ds.add(make_record(
            30.0 * tick + phase[c] + rng.uniform(-0.25, 0.25),
            "client-" + std::to_string(c), uas[c % uas.size()], url,
            "api.equiv.example", true, 800 + c,
            tick % 3 == 0 ? logs::CacheStatus::kNotCacheable
                          : logs::CacheStatus::kMiss,
            c % 5 == 0 ? http::Method::kPost : http::Method::kGet,
            tick == 7 && c == 3 ? 504 : 200));
      }
    }
  }
  for (int c = 0; c < 10; ++c) {
    double ts = rng.uniform(0.0, 4.0);
    for (int i = 0; i < 40; ++i) {
      ts += rng.exponential(1.0 / 15.0);
      ds.add(make_record(ts, "hot-" + std::to_string(c), uas[c % uas.size()],
                         "https://api.equiv.example/hot", "api.equiv.example",
                         true,
                         static_cast<std::uint64_t>(std::exp(rng.normal(7, 1))),
                         logs::CacheStatus::kHit, http::Method::kGet, 200));
    }
  }
  for (int u = 0; u < 60; ++u) {
    for (int i = 0; i < 5; ++i) {
      ds.add(make_record(rng.uniform(0.0, 700.0),
                         "tail-" + std::to_string(u % 21),
                         uas[(u + i) % uas.size()],
                         "https://api.equiv.example/obj/" + std::to_string(u),
                         "api.equiv.example", true,
                         static_cast<std::uint64_t>(std::exp(rng.normal(6, 1))),
                         logs::CacheStatus::kMiss, http::Method::kGet, 200));
    }
  }
  for (int i = 0; i < 1500; ++i) {
    ds.add(make_record(
        rng.uniform(0.0, 700.0), "web-" + std::to_string(i % 30),
        uas[i % uas.size()],
        "https://www.equiv.example/page/" + std::to_string(i % 40),
        "www.equiv.example", false,
        static_cast<std::uint64_t>(std::exp(rng.normal(9, 1.2))),
        logs::CacheStatus::kHit, http::Method::kGet, i % 90 == 0 ? 503 : 200));
  }
  ds.sort_by_time();
  return ds;
}

struct Fixture {
  logs::Dataset full;
  logs::Dataset json;
  logs::LogTable table;
  std::vector<logs::LogTable::RowIndex> json_indices;

  Fixture()
      : full(make_traffic()),
        json(full.json_only()),
        table(logs::LogTable::from_dataset(full)),
        json_indices(table.json_rows()) {}

  [[nodiscard]] logs::TableView full_view() const {
    return logs::TableView(table);
  }
  [[nodiscard]] logs::TableView json_view() const {
    return logs::TableView(table, json_indices);
  }
};

const Fixture& fixture() {
  static const Fixture* f = new Fixture();
  return *f;
}

TEST(ColumnarEquivalence, ObjectFlowsAreIdentical) {
  const auto& f = fixture();
  const auto row_flows = logs::extract_object_flows(f.json);
  const auto col_flows = logs::extract_object_flows(f.json_view());
  ASSERT_EQ(row_flows.size(), col_flows.size());
  for (std::size_t i = 0; i < row_flows.size(); ++i) {
    const auto& a = row_flows[i];
    const auto& b = col_flows[i];
    ASSERT_EQ(a.url, b.url);
    ASSERT_EQ(a.times, b.times);
    ASSERT_EQ(a.total_requests, b.total_requests);
    ASSERT_EQ(a.uncacheable_share, b.uncacheable_share);
    ASSERT_EQ(a.upload_share, b.upload_share);
    ASSERT_EQ(a.clients.size(), b.clients.size());
    for (std::size_t c = 0; c < a.clients.size(); ++c) {
      ASSERT_EQ(a.clients[c].client, b.clients[c].client);
      ASSERT_EQ(a.clients[c].times, b.clients[c].times);
      // Both paths index into the same (json-filtered, time-sorted) row
      // sequence, so even the indices agree.
      ASSERT_EQ(a.clients[c].record_indices, b.clients[c].record_indices);
    }
  }
}

TEST(ColumnarEquivalence, ClientFlowsAreIdentical) {
  const auto& f = fixture();
  const auto row_flows = logs::extract_client_flows(f.json);
  const auto col_flows = logs::extract_client_flows(f.json_view());
  ASSERT_EQ(row_flows.size(), col_flows.size());
  for (std::size_t i = 0; i < row_flows.size(); ++i) {
    ASSERT_EQ(row_flows[i].client, col_flows[i].client);
    ASSERT_EQ(row_flows[i].record_indices, col_flows[i].record_indices);
  }
}

TEST(ColumnarEquivalence, CharacterizationRendersIdentically) {
  const auto& f = fixture();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_EQ(core::render_source(core::characterize_source(f.json, threads)),
              core::render_source(
                  core::characterize_source(f.json_view(), threads)))
        << threads;
    EXPECT_EQ(
        core::render_headline(core::characterize_methods(f.json, threads),
                              core::characterize_cacheability(f.json, threads),
                              core::compare_sizes(f.full, threads)),
        core::render_headline(
            core::characterize_methods(f.json_view(), threads),
            core::characterize_cacheability(f.json_view(), threads),
            core::compare_sizes(f.full_view(), threads)))
        << threads;
    EXPECT_EQ(
        core::render_status(core::characterize_status(f.full, threads)),
        core::render_status(core::characterize_status(f.full_view(), threads)))
        << threads;

    const core::IndustryLookup lookup = [](std::string_view domain) {
      return std::string(domain.substr(0, domain.find('.')));
    };
    EXPECT_EQ(core::render_heatmap(core::cacheability_heatmap(
                  core::domain_cacheability(f.json, lookup, threads))),
              core::render_heatmap(core::cacheability_heatmap(
                  core::domain_cacheability(f.json_view(), lookup, threads))))
        << threads;
  }
}

TEST(ColumnarEquivalence, PeriodicityRendersIdentically) {
  const auto& f = fixture();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::PeriodicityConfig config;
    config.detector.permutations = 25;
    config.threads = threads;
    const auto row_report = core::analyze_periodicity(f.json, config);
    const auto col_report = core::analyze_periodicity(f.json_view(), config);
    EXPECT_EQ(core::render_periodicity_summary(row_report),
              core::render_periodicity_summary(col_report))
        << threads;
    EXPECT_EQ(core::render_period_histogram(row_report.object_periods),
              core::render_period_histogram(col_report.object_periods))
        << threads;
    EXPECT_EQ(
        core::render_periodic_client_cdf(row_report.periodic_client_shares),
        core::render_periodic_client_cdf(col_report.periodic_client_shares))
        << threads;
  }
}

TEST(ColumnarEquivalence, NgramRendersIdentically) {
  const auto& f = fixture();
  for (const bool clustered : {false, true}) {
    core::NgramEvalConfig config;
    config.clustered = clustered;
    config.threads = 2;
    const auto row = core::evaluate_ngram(f.json, config);
    const auto col = core::evaluate_ngram(f.json_view(), config);
    EXPECT_EQ(core::render_ngram_table({row}),
              core::render_ngram_table({col}))
        << clustered;
    EXPECT_EQ(row.train_clients, col.train_clients);
    EXPECT_EQ(row.test_clients, col.test_clients);
    EXPECT_EQ(row.predictions, col.predictions);
    EXPECT_EQ(row.accuracy_at, col.accuracy_at);
  }
}

TEST(ColumnarEquivalence, StreamingSummaryRendersIdentically) {
  const auto& f = fixture();
  constexpr std::size_t kChunk = 512;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    stream::StreamingConfig config;
    config.threads = threads;

    stream::StreamingStudy from_records(config);
    const auto& records = f.full.records();
    for (std::size_t begin = 0; begin < records.size(); begin += kChunk) {
      const auto count = std::min(kChunk, records.size() - begin);
      from_records.ingest(
          std::span<const logs::LogRecord>(&records[begin], count));
    }

    stream::StreamingStudy from_table(config);
    std::vector<logs::LogTable::RowIndex> order(f.table.size());
    std::iota(order.begin(), order.end(), logs::LogTable::RowIndex{0});
    for (std::size_t begin = 0; begin < order.size(); begin += kChunk) {
      const auto count = std::min(kChunk, order.size() - begin);
      from_table.ingest(
          f.table,
          std::span<const logs::LogTable::RowIndex>(&order[begin], count));
    }

    EXPECT_EQ(stream::render_streaming_summary(from_records.summary()),
              stream::render_streaming_summary(from_table.summary()))
        << threads;
  }
}

}  // namespace
}  // namespace jsoncdn
