// Edge overload protection: the admission-control layer a real CDN puts in
// front of its request-processing pipeline, so hostile load (scrapers,
// credential-stuffing bursts, flash crowds) degrades machine-class traffic
// before human-class traffic instead of collapsing everyone's latency.
//
// Three mechanisms, each independently switchable:
//
//   1. Capacity model — the edge has `concurrency` workers; an admitted
//      request waits for the earliest-free worker, and that queueing delay
//      is added to its client-perceived latency. This is what makes a flash
//      crowd *hurt* in the simulation: without it, requests are serviced in
//      zero simulated contention and overload is invisible.
//   2. Bounded admission queue — when more than `queue_limit` admitted
//      requests are still waiting for a worker, new arrivals are rejected
//      outright (SHED, 503) instead of growing the queue without bound.
//   3. Per-client token buckets — each distinct client key (the PR-5
//      interned symbol space keeps the table dense) earns `bucket_rate`
//      requests/second up to a burst of `bucket_burst`; an empty bucket
//      rejects the request (THROTTLED, 429). This is what stops a single
//      scraper or stuffing bot at machine cadence.
//   4. CoDel-style load shedding — when the queueing delay has stayed above
//      `codel_target_seconds` for a full `codel_interval_seconds`, the edge
//      starts shedding machine-class requests (the prioritizer's two-class
//      split: a human is not waiting for machine traffic); human-class
//      requests are shed only past `human_shed_multiplier` times the target.
//
// Every decision is a pure function of the arrival sequence — no wall
// clock, no RNG — so identically-seeded runs replay bit-identically
// regardless of analysis thread counts. With `model_capacity == false` the
// controller is inert and the edge behaves bit-identically to pre-overload
// builds.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <string_view>
#include <vector>

#include "logs/interner.h"

namespace jsoncdn::cdn {

struct OverloadParams {
  // Master switch for the whole layer (capacity model + protections).
  // Disabled => admit() always admits with zero queue wait and no state.
  bool model_capacity = false;
  // Edge request-processing workers and per-request service floor. The
  // service time charged per request is max(floor, transfer time), so big
  // oversized-JSON bodies occupy a worker for longer.
  std::size_t concurrency = 8;
  double service_floor_seconds = 0.002;

  // Bounded admission queue (mechanism 2). 0 disables the bound.
  std::size_t queue_limit = 0;

  // Per-client token buckets (mechanism 3). rate == 0 disables.
  double bucket_rate = 0.0;   // tokens (requests) per second
  double bucket_burst = 20.0; // bucket capacity

  // CoDel-style shedding (mechanism 4). target == 0 disables.
  double codel_target_seconds = 0.0;
  double codel_interval_seconds = 0.5;
  // Human-class traffic is shed only when the queue delay exceeds
  // target * human_shed_multiplier — machine-class sheds first.
  double human_shed_multiplier = 4.0;

  // A protected-edge preset used by the conformance overload experiment and
  // the CLI: capacity model plus all three protections.
  [[nodiscard]] static OverloadParams protected_defaults();
  // Capacity model only — queues grow without bound, nothing is rejected.
  // This is the "unprotected" arm of the overload experiment.
  [[nodiscard]] static OverloadParams unprotected_defaults();
};

// Why a request was rejected (or not).
enum class AdmitOutcome {
  kAdmitted,
  kShedQueueFull,   // bounded admission queue overflow      -> SHED
  kShedOverload,    // CoDel queue-delay shedding            -> SHED
  kThrottled,       // per-client token bucket empty         -> THROTTLED
};

struct AdmitDecision {
  AdmitOutcome outcome = AdmitOutcome::kAdmitted;
  // Simulated time the request waits for a worker (admitted requests only);
  // the edge adds this to the client-perceived latency.
  double queue_wait = 0.0;
  [[nodiscard]] bool admitted() const noexcept {
    return outcome == AdmitOutcome::kAdmitted;
  }
};

// The prioritizer's two-class split, decided from the user agent alone:
// browsers and native apps serve a waiting human; libraries, bots, and
// missing/garbage UAs are machine-to-machine. CoDel sheds machine first.
[[nodiscard]] bool machine_class(std::string_view user_agent);

class OverloadController {
 public:
  explicit OverloadController(const OverloadParams& params);

  // Admission decision for a request from `client_key` arriving at `now`.
  // `machine` is the prioritizer's two-class split (machine-to-machine vs
  // human-facing); CoDel sheds machine-class first. Events must arrive in
  // non-decreasing time order (the edge simulator guarantees this).
  [[nodiscard]] AdmitDecision admit(std::string_view client_key, bool machine,
                                    double now);

  // Reports the service time of the request just admitted at `now`: the
  // earliest-free worker is occupied from max(now, its free time) for
  // `service_seconds`. Call exactly once per admitted request.
  void complete(double now, double service_seconds);

  // Current queueing delay a request arriving at `now` would see.
  [[nodiscard]] double queue_delay(double now) const;
  // Admitted requests still waiting for a worker at `now`.
  [[nodiscard]] std::size_t queued(double now);

  [[nodiscard]] const OverloadParams& params() const noexcept {
    return params_;
  }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double refilled_at = 0.0;
  };

  [[nodiscard]] bool take_token(std::string_view client_key, double now);

  OverloadParams params_;
  // Worker busy-until times, min-heap: top() is the earliest-free worker.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at_;
  // Start times of admitted-but-not-yet-started requests, in admission
  // order; fronts <= now have started. Size is the live queue length.
  std::deque<double> pending_starts_;
  // CoDel state: when the queue delay first exceeded the target (0 = not
  // currently above target).
  double first_above_at_ = -1.0;
  // Token buckets, dense over interned client symbols.
  logs::StringInterner clients_;
  std::vector<TokenBucket> buckets_;
};

}  // namespace jsoncdn::cdn
