// Anomaly detection on JSON traffic — both mechanisms the paper sketches:
// ngram-based ("detect when a highly unlikely object is requested", §5.2)
// and period-based ("an object requested at a different period than it is
// intended", §5.1). Normal clients follow app dependency graphs and fixed
// polling periods; injected anomalies walk URLs at random or drift off their
// period, and the detectors must rank them apart.
//
//   $ ./anomaly_detection
//
#include <algorithm>
#include <iostream>
#include <vector>

#include "cdn/network.h"
#include "core/anomaly.h"
#include "core/prefetch.h"
#include "logs/dataset.h"
#include "stats/rng.h"
#include "workload/generator.h"

int main() {
  using namespace jsoncdn;

  workload::GeneratorConfig config;
  config.seed = 31337;
  config.catalog_seed = 4242;  // train and test days share the app ecosystem
  config.duration_seconds = 2 * 3600.0;
  config.n_clients = 2500;
  config.catalog.domains_per_industry = 2;
  config.shares = {0.70, 0.03, 0.03, 0.10, 0.03, 0.08, 0.03};

  // Day 1: clean traffic the detector trains on. Day 2: fresh client
  // population, into which the anomalies are injected. Training on clean
  // history matters — a model trained on data containing the anomaly would
  // memorize it.
  workload::WorkloadGenerator train_generator(config);
  auto train_workload = train_generator.generate();

  config.seed = 31338;
  workload::WorkloadGenerator generator(config);
  auto workload = generator.generate();

  // --- Inject anomalous clients: random walks over the URL space. ---------
  stats::Rng rng(777);
  const auto& objects = generator.catalog().objects().objects();
  std::vector<std::string> anomalous_clients;
  for (int a = 0; a < 5; ++a) {
    const std::string address = "192.0.2." + std::to_string(a + 1);
    anomalous_clients.push_back(address);
    double t = rng.uniform(0.0, config.duration_seconds / 2.0);
    for (int i = 0; i < 40 && t < config.duration_seconds; ++i) {
      workload::RequestEvent ev;
      ev.time = t;
      ev.client_address = address;
      ev.user_agent = "NewsReader/3.0.0 (iPhone; iOS 12.4.1; Scale/3.00)";
      ev.method = http::Method::kGet;
      ev.url = objects[static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(objects.size()) - 1))]
                   .url;
      workload.events.push_back(std::move(ev));
      t += rng.uniform(5.0, 60.0);
    }
  }
  std::sort(workload.events.begin(), workload.events.end(),
            [](const auto& x, const auto& y) { return x.time < y.time; });

  cdn::CdnNetwork train_network(train_generator.catalog().objects(), {});
  const auto train_json = train_network.run(train_workload.events).json_only();

  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);
  const auto json = dataset.json_only();

  // --- Train on day 1, score every day-2 client flow. ----------------------
  const auto model = core::train_prefetch_model(train_json, /*context_len=*/1);
  const auto flows = logs::extract_client_flows(json, /*min_requests=*/10);
  const auto& records = json.records();

  struct Scored {
    std::string client;
    core::SequenceAnomaly anomaly;
  };
  std::vector<Scored> scored;
  for (const auto& flow : flows) {
    std::vector<std::string> tokens;
    tokens.reserve(flow.record_indices.size());
    for (const auto idx : flow.record_indices)
      tokens.push_back(records[idx].url);
    scored.push_back({flow.client, core::score_sequence(model, tokens)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.anomaly.mean_surprisal > b.anomaly.mean_surprisal;
  });

  // The injected clients should dominate the top of the ranking.
  const auto& anonymizer = network.anonymizer();
  std::size_t injected_in_top10 = 0;
  std::cout << "top anomalous client flows by mean surprisal (of "
            << scored.size() << " flows with >=10 requests):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, scored.size()); ++i) {
    bool injected = false;
    for (const auto& addr : anomalous_clients) {
      if (scored[i].client.rfind(anonymizer.pseudonym(addr), 0) == 0) {
        injected = true;
        ++injected_in_top10;
        break;
      }
    }
    std::cout << "  " << i + 1 << ". surprisal "
              << scored[i].anomaly.mean_surprisal << " bits, unpredicted "
              << scored[i].anomaly.unpredicted_share * 100.0 << "%"
              << (injected ? "   <-- injected anomaly" : "") << "\n";
  }
  std::cout << "\ninjected anomalies in top 10: " << injected_in_top10
            << " / " << anomalous_clients.size() << "\n\n";

  // --- Period anomaly: a poller that drifts off its schedule. -------------
  std::vector<double> steady_times;
  std::vector<double> drifting_times;
  double t = 0.0;
  stats::Rng prng(99);
  for (int i = 0; i < 60; ++i) {
    steady_times.push_back(30.0 * i + prng.normal(0.0, 0.3));
    // Drifting device: period stretches 2% per tick after tick 30.
    t += i < 30 ? 30.0 : 30.0 * (1.0 + 0.02 * (i - 30));
    drifting_times.push_back(t + prng.normal(0.0, 0.3));
  }
  const auto steady = core::check_period(steady_times, 30.0);
  const auto drifting = core::check_period(drifting_times, 30.0);
  std::cout << "period conformance vs expected 30 s:\n"
            << "  steady poller:   " << steady.deviant_share * 100.0
            << "% deviant gaps\n"
            << "  drifting poller: " << drifting.deviant_share * 100.0
            << "% deviant gaps\n";
  return 0;
}
