#include "logs/table.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>

#include "http/mime.h"
#include "stats/kernels.h"

namespace jsoncdn::logs {

namespace {

// Applies a row permutation to one column: out[k] = col[perm[k]].
template <typename T>
void gather(std::vector<T>& col, const std::vector<std::uint32_t>& perm) {
  std::vector<T> out(col.size());
  for (std::size_t k = 0; k < perm.size(); ++k) out[k] = col[perm[k]];
  col = std::move(out);
}

}  // namespace

void LogTable::reserve(std::size_t rows) {
  ts_.reserve(rows);
  method_.reserve(rows);
  status_.reserve(rows);
  resp_bytes_.reserve(rows);
  req_bytes_.reserve(rows);
  cache_.reserve(rows);
  edge_.reserve(rows);
  url_.reserve(rows);
  client_id_.reserve(rows);
  ua_.reserve(rows);
  domain_.reserve(rows);
  ctype_.reserve(rows);
  client_.reserve(rows);
}

void LogTable::clear_rows() noexcept {
  ts_.clear();
  method_.clear();
  status_.clear();
  resp_bytes_.clear();
  req_bytes_.clear();
  cache_.clear();
  edge_.clear();
  url_.clear();
  client_id_.clear();
  ua_.clear();
  domain_.clear();
  ctype_.clear();
  client_.clear();
}

LogTable::RowIndex LogTable::append_fields(
    double timestamp, std::string_view client_id, std::string_view user_agent,
    http::Method method, std::string_view url, std::string_view domain,
    std::string_view content_type, int status, std::uint64_t response_bytes,
    std::uint64_t request_bytes, CacheStatus cache_status,
    std::uint32_t edge_id) {
  const auto index = static_cast<RowIndex>(ts_.size());
  ts_.push_back(timestamp);
  method_.push_back(method);
  status_.push_back(status);
  resp_bytes_.push_back(response_bytes);
  req_bytes_.push_back(request_bytes);
  cache_.push_back(cache_status);
  edge_.push_back(edge_id);

  const Symbol cid = client_id_dict_.intern(client_id);
  const Symbol uas = ua_dict_.intern(user_agent);
  url_.push_back(url_dict_.intern(url));
  client_id_.push_back(cid);
  ua_.push_back(uas);
  domain_.push_back(domain_dict_.intern(domain));
  ctype_.push_back(ctype_dict_.intern(content_type));

  const std::uint64_t pair =
      (static_cast<std::uint64_t>(cid) << 32) | static_cast<std::uint64_t>(uas);
  auto [it, inserted] = client_pair_cache_.try_emplace(pair, Symbol{0});
  if (inserted) {
    key_scratch_.clear();
    key_scratch_.append(client_id);
    key_scratch_.push_back('|');
    key_scratch_.append(user_agent);
    it->second = client_dict_.intern(key_scratch_);
  }
  client_.push_back(it->second);
  return index;
}

void LogTable::append(const LogRecord& record) {
  append_fields(record.timestamp, record.client_id, record.user_agent,
                record.method, record.url, record.domain, record.content_type,
                record.status, record.response_bytes, record.request_bytes,
                record.cache_status, record.edge_id);
}

LogRecord LogTable::Row::materialize() const {
  LogRecord r;
  r.timestamp = timestamp();
  r.client_id = std::string(client_id());
  r.user_agent = std::string(user_agent());
  r.method = method();
  r.url = std::string(url());
  r.domain = std::string(domain());
  r.content_type = std::string(content_type());
  r.status = status();
  r.response_bytes = response_bytes();
  r.request_bytes = request_bytes();
  r.cache_status = cache_status();
  r.edge_id = edge_id();
  return r;
}

LogTable LogTable::from_dataset(const Dataset& dataset) {
  LogTable table;
  table.reserve(dataset.size());
  for (const auto& r : dataset.records()) table.append(r);
  return table;
}

Dataset LogTable::to_dataset() const {
  Dataset out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.add(record(static_cast<RowIndex>(i)));
  }
  return out;
}

void LogTable::sort_by_time() {
  std::vector<std::uint32_t> perm(size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return ts_[a] < ts_[b];
                   });
  gather(ts_, perm);
  gather(method_, perm);
  gather(status_, perm);
  gather(resp_bytes_, perm);
  gather(req_bytes_, perm);
  gather(cache_, perm);
  gather(edge_, perm);
  gather(url_, perm);
  gather(client_id_, perm);
  gather(ua_, perm);
  gather(domain_, perm);
  gather(ctype_, perm);
  gather(client_, perm);
}

std::vector<LogTable::RowIndex> LogTable::json_rows() const {
  std::vector<char> sym_is_json(ctype_dict_.size(), 0);
  for (std::size_t s = 0; s < ctype_dict_.size(); ++s) {
    sym_is_json[s] =
        http::is_json(ctype_dict_.view(static_cast<Symbol>(s))) ? 1 : 0;
  }
  std::vector<RowIndex> out;
  for (std::size_t i = 0; i < ctype_.size(); ++i) {
    if (sym_is_json[ctype_[i]]) out.push_back(static_cast<RowIndex>(i));
  }
  return out;
}

std::pair<double, double> LogTable::time_range() const {
  if (ts_.empty()) return {0.0, 0.0};
  double lo = ts_.front();
  double hi = lo;
  for (double t : ts_) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return {lo, hi};
}

std::size_t LogTable::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  bytes += ts_.capacity() * sizeof(double);
  bytes += method_.capacity() * sizeof(http::Method);
  bytes += status_.capacity() * sizeof(std::int32_t);
  bytes += resp_bytes_.capacity() * sizeof(std::uint64_t);
  bytes += req_bytes_.capacity() * sizeof(std::uint64_t);
  bytes += cache_.capacity() * sizeof(CacheStatus);
  bytes += edge_.capacity() * sizeof(std::uint32_t);
  bytes += (url_.capacity() + client_id_.capacity() + ua_.capacity() +
            domain_.capacity() + ctype_.capacity() + client_.capacity()) *
           sizeof(Symbol);
  bytes += url_dict_.memory_bytes() + client_id_dict_.memory_bytes() +
           ua_dict_.memory_bytes() + domain_dict_.memory_bytes() +
           ctype_dict_.memory_bytes() + client_dict_.memory_bytes();
  bytes += client_pair_cache_.bucket_count() *
           (sizeof(std::uint64_t) + sizeof(Symbol) + sizeof(void*));
  return bytes;
}

// Flow indices are positions *within the view* (0..view.size()-1), matching
// the record indices the Dataset overload produces on the equivalent filtered
// dataset; consumers map back to table rows with view[idx].
std::vector<ObjectFlow> extract_object_flows(const TableView& view,
                                             const FlowFilter& filter) {
  const LogTable& table = view.table();
  const std::size_t n = view.size();

  // Bucket view positions by url symbol with a counting sort: one histogram
  // pass (the group-by counting kernel), a prefix sum into per-symbol
  // offsets, and a stable scatter into a single flat array — no
  // vector-of-vectors growth. Per-symbol position order is ascending k,
  // exactly what per-bucket push_back produced.
  const std::size_t n_urls = table.urls().size();
  const std::uint32_t* row_idx = view.row_indices();
  std::vector<std::uint64_t> counts(n_urls, 0);
  stats::kernels::count_u32(table.url_syms().data(), row_idx, n,
                            counts.data(), n_urls);
  std::vector<std::uint32_t> offsets(n_urls + 1, 0);
  for (std::size_t s = 0; s < n_urls; ++s) {
    offsets[s + 1] = offsets[s] + static_cast<std::uint32_t>(counts[s]);
  }
  std::vector<std::uint32_t> bucketed(n);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < n; ++k) {
      bucketed[cursor[table.url_sym(view[k])]++] =
          static_cast<std::uint32_t>(k);
    }
  }

  std::vector<ObjectFlow> out;
  std::unordered_map<std::uint64_t, ClientObjectFlow> by_client;
  for (std::size_t sym = 0; sym < n_urls; ++sym) {
    const std::span<std::uint32_t> indices(bucketed.data() + offsets[sym],
                                           offsets[sym + 1] - offsets[sym]);
    if (indices.empty()) continue;  // url not present in this view

    // Same defensive time sort as the Dataset path: identical comparator on
    // the identical input sequence, so equal-timestamp ties break the same
    // way even though std::sort is not stable.
    std::sort(indices.begin(), indices.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return table.timestamp(view[a]) < table.timestamp(view[b]);
              });

    by_client.clear();
    ObjectFlow flow;
    flow.url = std::string(table.urls().view(
        static_cast<LogTable::Symbol>(sym)));
    flow.total_requests = indices.size();
    flow.times.reserve(indices.size());
    std::size_t uncacheable = 0;
    std::size_t uploads = 0;
    for (std::uint32_t k : indices) {
      const LogTable::RowIndex row = view[k];
      const double t = table.timestamp(row);
      flow.times.push_back(t);
      if (table.cache_status(row) == CacheStatus::kNotCacheable) ++uncacheable;
      if (http::is_upload(table.method(row))) ++uploads;
      auto& cof = by_client[table.client_sym(row)];
      if (cof.client.empty()) cof.client = std::string(table.client_key(row));
      cof.times.push_back(t);
      cof.record_indices.push_back(k);
    }
    flow.uncacheable_share =
        static_cast<double>(uncacheable) / static_cast<double>(indices.size());
    flow.upload_share =
        static_cast<double>(uploads) / static_cast<double>(indices.size());

    if (by_client.size() < filter.min_object_clients) continue;

    flow.clients.reserve(by_client.size());
    for (auto& [client_sym, cof] : by_client) {
      if (cof.times.size() >= filter.min_client_flow_requests) {
        flow.clients.push_back(std::move(cof));
      }
    }
    std::sort(flow.clients.begin(), flow.clients.end(),
              [](const ClientObjectFlow& a, const ClientObjectFlow& b) {
                return a.client < b.client;
              });
    out.push_back(std::move(flow));
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectFlow& a, const ObjectFlow& b) {
              return a.url < b.url;
            });
  return out;
}

std::vector<ClientFlow> extract_client_flows(const TableView& view,
                                             std::size_t min_requests) {
  const LogTable& table = view.table();
  const std::size_t n = view.size();

  std::vector<std::vector<std::size_t>> by_client(table.client_keys().size());
  for (std::size_t k = 0; k < n; ++k) {
    by_client[table.client_sym(view[k])].push_back(k);
  }

  std::vector<ClientFlow> out;
  for (std::size_t sym = 0; sym < by_client.size(); ++sym) {
    auto& indices = by_client[sym];
    if (indices.size() < min_requests) continue;
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                return table.timestamp(view[a]) < table.timestamp(view[b]);
              });
    ClientFlow flow;
    flow.client = std::string(
        table.client_keys().view(static_cast<LogTable::Symbol>(sym)));
    flow.record_indices = std::move(indices);
    out.push_back(std::move(flow));
  }
  std::sort(out.begin(), out.end(),
            [](const ClientFlow& a, const ClientFlow& b) {
              return a.client < b.client;
            });
  return out;
}

}  // namespace jsoncdn::logs
