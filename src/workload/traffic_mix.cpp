#include "workload/traffic_mix.h"

#include <cmath>
#include <stdexcept>

#include "http/mime.h"
#include "stats/descriptive.h"

namespace jsoncdn::workload {

namespace {

double geo_interp(double a, double b, double t) {
  // Geometric interpolation keeps shares positive and models compounding
  // ecosystem growth; falls back to linear when an endpoint is zero.
  if (a <= 0.0 || b <= 0.0) return a + (b - a) * t;
  return a * std::pow(b / a, t);
}

}  // namespace

PopulationShares interpolate_mix(const GrowthConfig& config, int q) {
  if (q < 0 || q >= config.n_quarters)
    throw std::invalid_argument("interpolate_mix: quarter out of range");
  const double t = config.n_quarters <= 1
                       ? 1.0
                       : static_cast<double>(q) /
                             static_cast<double>(config.n_quarters - 1);
  const auto& a = config.mix_2016;
  const auto& b = config.mix_2019;
  PopulationShares out;
  out.mobile_app = geo_interp(a.mobile_app, b.mobile_app, t);
  out.mobile_browser = geo_interp(a.mobile_browser, b.mobile_browser, t);
  out.desktop_browser = geo_interp(a.desktop_browser, b.desktop_browser, t);
  out.embedded = geo_interp(a.embedded, b.embedded, t);
  out.library = geo_interp(a.library, b.library, t);
  out.no_ua = geo_interp(a.no_ua, b.no_ua, t);
  out.garbage_ua = geo_interp(a.garbage_ua, b.garbage_ua, t);
  return out;
}

double json_size_log_shift_at(const GrowthConfig& config, int q) {
  if (q < 0 || q >= config.n_quarters)
    throw std::invalid_argument("json_size_log_shift_at: quarter out of range");
  if (config.json_size_total_scale <= 0.0)
    throw std::invalid_argument("json_size_log_shift_at: scale <= 0");
  const double t = config.n_quarters <= 1
                       ? 1.0
                       : static_cast<double>(q) /
                             static_cast<double>(config.n_quarters - 1);
  // Shifting the lognormal location by ln(s) scales every quantile (and the
  // mean) by s.
  return std::log(config.json_size_total_scale) * t;
}

std::vector<QuarterStats> simulate_growth(const GrowthConfig& config) {
  if (config.n_quarters <= 0)
    throw std::invalid_argument("simulate_growth: n_quarters <= 0");
  std::vector<QuarterStats> out;
  out.reserve(static_cast<std::size_t>(config.n_quarters));

  for (int q = 0; q < config.n_quarters; ++q) {
    GeneratorConfig gen;
    gen.seed = config.seed + static_cast<std::uint64_t>(q) * 7919;
    gen.duration_seconds = config.duration_seconds;
    gen.n_clients = static_cast<std::size_t>(
        std::llround(static_cast<double>(config.clients_per_quarter) *
                     std::pow(config.quarterly_traffic_growth, q)));
    gen.shares = interpolate_mix(config, q);
    gen.catalog.json_size_log_shift = json_size_log_shift_at(config, q);
    const double t = config.n_quarters <= 1
                         ? 1.0
                         : static_cast<double>(q) /
                               static_cast<double>(config.n_quarters - 1);
    gen.browser_session.json_xhr_prob =
        config.browser_xhr_prob_2016 +
        (config.browser_xhr_prob_2019 - config.browser_xhr_prob_2016) * t;
    gen.browser_session.max_json_xhr_per_page = static_cast<std::size_t>(
        std::lround(static_cast<double>(config.browser_max_xhr_2016) +
                    (static_cast<double>(config.browser_max_xhr_2019) -
                     static_cast<double>(config.browser_max_xhr_2016)) *
                        t));
    gen.unknown_app_like_share =
        config.unknown_app_like_2016 +
        (config.unknown_app_like_2019 - config.unknown_app_like_2016) * t;
    gen.app_webview_html_prob =
        config.webview_prob_2016 +
        (config.webview_prob_2019 - config.webview_prob_2016) * t;
    // Keep the per-quarter catalog small: the ratio is about traffic mix,
    // not catalog breadth.
    gen.catalog.domains_per_industry = 2;

    WorkloadGenerator generator(gen);
    const auto workload = generator.generate();
    const auto& objects = generator.catalog().objects();

    QuarterStats stats;
    stats.year = config.start_year +
                 (config.start_quarter - 1 + q) / 4;
    stats.quarter = (config.start_quarter - 1 + q) % 4 + 1;
    stats.label = std::to_string(stats.year) + "Q" +
                  std::to_string(stats.quarter);
    double json_bytes = 0.0;
    double html_bytes = 0.0;
    for (const auto& ev : workload.events) {
      const auto* obj = objects.find(ev.url);
      if (obj == nullptr) continue;
      if (obj->content == http::ContentClass::kJson) {
        ++stats.json_requests;
        json_bytes += static_cast<double>(obj->body_bytes);
      } else if (obj->content == http::ContentClass::kHtml) {
        ++stats.html_requests;
        html_bytes += static_cast<double>(obj->body_bytes);
      }
    }
    std::vector<double> json_object_sizes;
    for (const auto& obj : objects.objects()) {
      if (obj.content == http::ContentClass::kJson)
        json_object_sizes.push_back(static_cast<double>(obj.body_bytes));
    }
    if (!json_object_sizes.empty()) {
      stats.median_json_bytes =
          jsoncdn::stats::percentile(json_object_sizes, 0.5);
    }
    stats.json_html_ratio =
        stats.html_requests == 0
            ? 0.0
            : static_cast<double>(stats.json_requests) /
                  static_cast<double>(stats.html_requests);
    stats.mean_json_bytes =
        stats.json_requests == 0
            ? 0.0
            : json_bytes / static_cast<double>(stats.json_requests);
    stats.mean_html_bytes =
        stats.html_requests == 0
            ? 0.0
            : html_bytes / static_cast<double>(stats.html_requests);
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace jsoncdn::workload
