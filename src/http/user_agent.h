// User-Agent string tokenizer (RFC 7231 §5.5.3 grammar: products with
// optional versions, interleaved with parenthesized comments). The device
// classifier consumes these tokens; keeping tokenization separate from
// classification mirrors the paper's pipeline (UA grouping by system
// identifiers, then an EDC-style device database lookup).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jsoncdn::http {

// One "product/version" token from the UA string.
struct UaProduct {
  std::string name;
  std::string version;  // empty when absent
  bool operator==(const UaProduct&) const = default;
};

// Tokenized user agent: products in order, plus the contents of every
// parenthesized comment split on ';'.
struct UserAgent {
  std::string raw;
  std::vector<UaProduct> products;
  std::vector<std::string> comments;  // trimmed comment items

  [[nodiscard]] bool empty() const noexcept { return raw.empty(); }
  // True if any product name or comment item contains `needle`
  // (ASCII case-insensitive).
  [[nodiscard]] bool mentions(std::string_view needle) const;
};

// Never fails: an arbitrary byte string still tokenizes (possibly to a single
// product with no version). Empty input yields an empty UserAgent.
[[nodiscard]] UserAgent parse_user_agent(std::string_view raw);

// ASCII case-insensitive substring search, exposed for the classifier.
[[nodiscard]] bool icontains(std::string_view haystack,
                             std::string_view needle) noexcept;

}  // namespace jsoncdn::http
