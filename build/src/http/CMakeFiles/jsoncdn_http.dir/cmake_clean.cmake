file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_http.dir/device_db.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/device_db.cpp.o.d"
  "CMakeFiles/jsoncdn_http.dir/headers.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/headers.cpp.o.d"
  "CMakeFiles/jsoncdn_http.dir/method.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/method.cpp.o.d"
  "CMakeFiles/jsoncdn_http.dir/mime.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/mime.cpp.o.d"
  "CMakeFiles/jsoncdn_http.dir/url.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/url.cpp.o.d"
  "CMakeFiles/jsoncdn_http.dir/user_agent.cpp.o"
  "CMakeFiles/jsoncdn_http.dir/user_agent.cpp.o.d"
  "libjsoncdn_http.a"
  "libjsoncdn_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
