#include "cdn/network.h"

#include <stdexcept>

#include "stats/hash.h"

namespace jsoncdn::cdn {

CdnNetwork::CdnNetwork(const workload::ObjectCatalog& catalog,
                       const NetworkParams& params)
    : origin_(catalog, params.origin),
      anonymizer_(params.anonymization_salt) {
  if (params.edge_count == 0)
    throw std::invalid_argument("CdnNetwork: edge_count == 0");
  edges_.reserve(params.edge_count);
  for (std::size_t i = 0; i < params.edge_count; ++i) {
    edges_.emplace_back(static_cast<std::uint32_t>(i), origin_, anonymizer_,
                        params.edge);
  }
}

std::size_t CdnNetwork::edge_for(std::string_view client_address) const {
  return stats::fnv1a64(client_address) % edges_.size();
}

logs::Dataset CdnNetwork::run(
    const std::vector<workload::RequestEvent>& events,
    PrefetchPolicy* policy) {
  logs::Dataset dataset;
  dataset.reserve(events.size());
  for (const auto& event : events) {
    auto& edge = edges_[edge_for(event.client_address)];
    dataset.add(edge.handle(event, policy));
  }
  dataset.sort_by_time();
  return dataset;
}

DeliveryMetrics CdnNetwork::total_metrics() const {
  DeliveryMetrics total;
  for (const auto& edge : edges_) total.merge(edge.metrics());
  return total;
}

}  // namespace jsoncdn::cdn
