file(REMOVE_RECURSE
  "CMakeFiles/fig3_device_breakdown.dir/fig3_device_breakdown.cpp.o"
  "CMakeFiles/fig3_device_breakdown.dir/fig3_device_breakdown.cpp.o.d"
  "fig3_device_breakdown"
  "fig3_device_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_device_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
