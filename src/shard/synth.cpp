#include "shard/synth.h"

#include <algorithm>
#include <cstdio>

namespace jsoncdn::shard {

namespace {

// splitmix64 — the minimal deterministic PRNG; good enough for workload
// shaping, and a pure function of the seed.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit(std::uint64_t& state) {
  return static_cast<double>(mix(state) >> 11) * 0x1.0p-53;
}

// Quadratic popularity bias: low indices are drawn far more often, giving
// the skewed head heavy-hitter analyses expect.
std::uint32_t skewed_index(std::uint64_t& state, std::uint32_t n) {
  const double u = unit(state);
  auto idx = static_cast<std::uint32_t>(u * u * n);
  return std::min(idx, n - 1);
}

std::string format_indexed(const char* pattern, std::uint32_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), pattern, i);
  return std::string(buf);
}

// Non-JSON object types, cycled per object; index 0 is reserved for JSON.
constexpr std::string_view kContentTypes[] = {
    "application/json",
    "text/html; charset=utf-8",
    "image/png",
    "application/octet-stream",
    "text/css",
    "application/javascript",
};

}  // namespace

SynthStream::SynthStream(const SynthOptions& options)
    : options_(options), state_(options.seed * 0x9e3779b97f4a7c15ULL + 1) {
  if (options_.clients == 0) options_.clients = 1;
  if (options_.user_agents == 0) options_.user_agents = 1;
  if (options_.urls == 0) options_.urls = 1;
  if (options_.domains == 0) options_.domains = 1;
  if (options_.edges == 0) options_.edges = 1;
  dt_ = options_.records > 0
            ? options_.duration / static_cast<double>(options_.records)
            : 0.0;

  clients_.reserve(options_.clients);
  for (std::uint32_t i = 0; i < options_.clients; ++i) {
    clients_.push_back(format_indexed("client-%07u", i));
  }
  user_agents_.reserve(options_.user_agents);
  for (std::uint32_t i = 0; i < options_.user_agents; ++i) {
    user_agents_.push_back(format_indexed("synth-agent/%u.0", i));
  }
  domains_.reserve(options_.domains);
  for (std::uint32_t i = 0; i < options_.domains; ++i) {
    domains_.push_back(format_indexed("d%04u.api-synth.example", i));
  }
  urls_.reserve(options_.urls);
  url_domain_.reserve(options_.urls);
  url_ctype_.reserve(options_.urls);
  // Per-object attributes are drawn from a fork of the seed so record
  // generation below never perturbs them.
  std::uint64_t object_state = state_ ^ 0xa5a5a5a5a5a5a5a5ULL;
  for (std::uint32_t i = 0; i < options_.urls; ++i) {
    urls_.push_back(format_indexed("/api/v1/object/%06u", i));
    url_domain_.push_back(i % options_.domains);
    const bool json = unit(object_state) < options_.json_share;
    url_ctype_.push_back(
        json ? 0
             : static_cast<std::uint8_t>(
                   1 + mix(object_state) %
                           (std::size(kContentTypes) - 1)));
  }
}

bool SynthStream::next(SynthFields& out) {
  if (produced_ >= options_.records) return false;
  const std::uint64_t i = produced_++;

  out.timestamp =
      options_.start_time + (static_cast<double>(i) + unit(state_)) * dt_;

  const std::uint32_t client = skewed_index(state_, options_.clients);
  const std::uint32_t url = skewed_index(state_, options_.urls);
  out.client_id = clients_[client];
  out.user_agent = user_agents_[client % options_.user_agents];
  out.url = urls_[url];
  out.domain = domains_[url_domain_[url]];
  out.content_type = kContentTypes[url_ctype_[url]];
  out.edge_id = static_cast<std::uint32_t>(mix(state_) % options_.edges);

  const std::uint64_t roll = mix(state_) % 100;
  out.method = roll < 90   ? http::Method::kGet
               : roll < 96 ? http::Method::kPost
               : roll < 98 ? http::Method::kPut
                           : http::Method::kHead;

  const std::uint64_t cache_roll = mix(state_) % 100;
  if (cache_roll < 70) {
    out.cache_status = logs::CacheStatus::kHit;
    out.status = 200;
  } else if (cache_roll < 85) {
    out.cache_status = logs::CacheStatus::kMiss;
    out.status = 200;
  } else if (cache_roll < 92) {
    out.cache_status = logs::CacheStatus::kRefreshHit;
    out.status = 200;
  } else if (cache_roll < 99) {
    out.cache_status = logs::CacheStatus::kNotCacheable;
    out.status = 200;
  } else {
    out.cache_status = logs::CacheStatus::kError;
    out.status = 503;
  }

  // Response sizes: JSON objects are small (hundreds of bytes to a few KB),
  // static objects span a wider range — both skewed toward small.
  const double size_u = unit(state_);
  const bool is_json = url_ctype_[url] == 0;
  const double base = is_json ? 256.0 : 1024.0;
  const double spread = is_json ? 8192.0 : 262144.0;
  out.response_bytes =
      static_cast<std::uint64_t>(base + size_u * size_u * spread);
  out.request_bytes =
      out.method == http::Method::kPost || out.method == http::Method::kPut
          ? 128 + mix(state_) % 2048
          : 0;
  return true;
}

void synth_records(const SynthOptions& options,
                   const std::function<void(const SynthFields&)>& fn) {
  SynthStream stream(options);
  SynthFields fields;
  while (stream.next(fields)) fn(fields);
}

}  // namespace jsoncdn::shard
