// Deterministic parallel execution primitives for the analysis pipeline.
//
// The contract everything here is built around: parallel output is
// bit-identical to serial output. Three ingredients make that hold:
//
//   (1) index-ordered result placement — parallel_map writes result i into
//       slot i of a preallocated vector, so result order never depends on
//       scheduling;
//   (2) chunk-ordered reduction — parallel_reduce accumulates into one
//       accumulator per contiguous index chunk and merges them in ascending
//       chunk order, so floating-point and container iteration order match a
//       serial left fold over the same chunks;
//   (3) per-task randomness — callers fork independent RNG streams per item
//       (stats::Rng::fork), never sharing a generator across tasks.
//
// The chunk partition is a pure function of (n, thread_count): which worker
// executes a chunk varies run to run, but *what* each chunk computes and the
// order results are combined in never does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsoncdn::stats {

// Resolves a requested thread count: 0 means "auto" — the JSONCDN_THREADS
// environment variable when set to a positive integer, otherwise
// hardware_concurrency. Always returns >= 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

// Fixed-size worker pool executing indexed task batches. One run() is active
// at a time (concurrent run() calls from different threads serialize); the
// calling thread participates in task execution, so a pool of size N applies
// N threads total with N-1 workers. run() called from inside one of the
// pool's own tasks executes inline (nested-use safety: no deadlock, still
// every index exactly once).
class ThreadPool {
 public:
  // `threads` is passed through resolve_threads; the pool ends up with
  // max(1, resolved) threads. A size-1 pool spawns no workers and run()
  // executes inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  // Executes task(i) for every i in [0, n_tasks), blocking until all
  // complete. Tasks are claimed dynamically (load balancing); callers
  // needing determinism must make task(i) independent of execution order.
  // If any task throws, one of the thrown exceptions is rethrown here after
  // all remaining tasks have run.
  void run(std::size_t n_tasks, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  // Claims and executes tasks of the active batch. Requires `lock` held on
  // mu_; returns with it held.
  void drain(std::unique_lock<std::mutex>& lock);

  std::mutex run_mu_;  // serializes run() callers
  std::mutex mu_;      // guards all state below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t n_tasks_ = 0;
  std::size_t next_ = 0;    // next unclaimed task index
  std::size_t active_ = 0;  // claimed but unfinished tasks
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Number of contiguous chunks parallel_for/parallel_reduce split [0, n)
// into: a pure function of (n, pool size), so chunk boundaries — and hence
// merge order — are reproducible across runs and machines with the same
// thread setting. Several chunks per thread absorb skew (e.g. one giant
// periodic flow among thousands of cheap aperiodic ones).
[[nodiscard]] std::size_t chunk_count(const ThreadPool& pool, std::size_t n);

// [begin, end) of chunk `c` out of `chunks` over [0, n): balanced partition,
// earlier chunks take the remainder.
[[nodiscard]] std::pair<std::size_t, std::size_t> chunk_range(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept;

// Runs body(begin, end, chunk_index) over the chunk partition of [0, n).
void parallel_for(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

// Index-ordered parallel map: out[i] = fn(i). Requires T default- and
// move-constructible. Bit-identical to the serial loop by construction.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(ThreadPool& pool, std::size_t n,
                                          Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
               });
  return out;
}

// Shard-then-merge reduction: one default-constructed Acc per chunk is
// filled by body(acc, begin, end), then the chunk accumulators are folded
// left-to-right in chunk order via acc.merge(other). Equal to the serial
// result whenever merge distributes over the chunk boundaries (integer
// counters, container unions, concatenations in index order).
template <typename Acc, typename Body>
[[nodiscard]] Acc parallel_reduce(ThreadPool& pool, std::size_t n,
                                  Body&& body) {
  const std::size_t chunks = chunk_count(pool, n);
  if (chunks <= 1) {
    Acc acc{};
    if (n > 0) body(acc, 0, n);
    return acc;
  }
  std::vector<Acc> accs(chunks);
  parallel_for(pool, n,
               [&](std::size_t begin, std::size_t end, std::size_t c) {
                 body(accs[c], begin, end);
               });
  Acc out = std::move(accs.front());
  for (std::size_t c = 1; c < chunks; ++c) out.merge(accs[c]);
  return out;
}

}  // namespace jsoncdn::stats
