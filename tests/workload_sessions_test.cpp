#include "workload/sessions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace jsoncdn::workload {
namespace {

struct Fixture {
  Fixture() : catalog_config(), rng(1) {
    catalog_config.domains_per_industry = 1;
    catalog = std::make_unique<DomainCatalog>(catalog_config, stats::Rng(5));
    graph = std::make_unique<AppGraph>(catalog->domains().front(),
                                       catalog->mutable_objects(),
                                       AppGraphParams{}, stats::Rng(6));
  }
  CatalogConfig catalog_config;
  std::unique_ptr<DomainCatalog> catalog;
  std::unique_ptr<AppGraph> graph;
  stats::Rng rng;
};

TEST(AppSession, StartsAtManifest) {
  Fixture f;
  const auto events = generate_app_session(*f.graph, "10.0.0.1", "ua", 100.0,
                                           {}, f.rng);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().time, 100.0);
  EXPECT_EQ(events.front().url,
            f.graph->urls_of(f.graph->manifest()).front());
  EXPECT_EQ(events.front().method, http::Method::kGet);
}

TEST(AppSession, TimesStrictlyAscendingAndClientFieldsSet) {
  Fixture f;
  const auto events = generate_app_session(*f.graph, "10.0.0.1", "myua", 0.0,
                                           {}, f.rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].client_address, "10.0.0.1");
    EXPECT_EQ(events[i].user_agent, "myua");
    if (i > 0) EXPECT_GT(events[i].time, events[i - 1].time);
  }
}

TEST(AppSession, UploadsCarryBodies) {
  Fixture f;
  bool saw_upload = false;
  for (int s = 0; s < 50 && !saw_upload; ++s) {
    for (const auto& ev :
         generate_app_session(*f.graph, "a", "u", 0.0, {}, f.rng)) {
      if (http::is_upload(ev.method)) {
        saw_upload = true;
        EXPECT_GT(ev.request_bytes, 0u);
      } else {
        EXPECT_EQ(ev.request_bytes, 0u);
      }
    }
  }
}

TEST(AppSession, GeometricLengthHasConfiguredMean) {
  Fixture f;
  AppSessionParams params;
  params.mean_requests_per_session = 5.0;
  double total = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(
        generate_app_session(*f.graph, "a", "u", 0.0, params, f.rng).size());
  }
  EXPECT_NEAR(total / n, 5.0, 0.3);
}

TEST(BrowserSession, FetchesPageThenTemplateSubresources) {
  Fixture f;
  const auto& domain = f.catalog->domains().front();
  BrowserSessionParams params;
  params.mean_pages_per_session = 1.0;  // geometric with mean 1
  params.json_xhr_prob = 1.0;
  const auto events = generate_browser_session(
      domain, f.catalog->objects(), "10.0.0.2", "bua", 0.0, params, f.rng);
  ASSERT_FALSE(events.empty());
  const auto* first = f.catalog->objects().find(events.front().url);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->content, http::ContentClass::kHtml);
  // All subsequent requests of the page belong to its template lists.
  bool saw_json = false;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto* obj = f.catalog->objects().find(events[i].url);
    ASSERT_NE(obj, nullptr);
    if (obj->content == http::ContentClass::kJson) saw_json = true;
    if (obj->content == http::ContentClass::kHtml) break;  // next page
  }
  EXPECT_TRUE(saw_json);
}

TEST(BrowserSession, SamePageSameDependencies) {
  Fixture f;
  const auto& domain = f.catalog->domains().front();
  // Page dependency lists are template-fixed: two visits to page 0 fetch the
  // same assets.
  ASSERT_FALSE(domain.page_assets.empty());
  EXPECT_EQ(domain.page_assets[0], domain.page_assets[0]);
  for (const auto idx : domain.page_assets[0]) {
    EXPECT_LT(idx, f.catalog->objects().size());
  }
}

TEST(BrowserSession, EmptyDomainYieldsNoEvents) {
  Fixture f;
  DomainSpec empty;
  empty.name = "empty.example";
  const auto events = generate_browser_session(
      empty, f.catalog->objects(), "a", "u", 0.0, {}, f.rng);
  EXPECT_TRUE(events.empty());
}

TEST(PeriodicFlow, TicksAtConfiguredPeriod) {
  Fixture f;
  PeriodicFlowParams params;
  params.period_seconds = 30.0;
  params.jitter_stddev = 0.0;
  params.dropout_prob = 0.0;
  params.phase_offset = 3.0;
  const auto events = generate_periodic_flow(
      "https://h/x", http::Method::kGet, "a", "u", 0.0, 300.0, params, f.rng);
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_NEAR(events[i].time, 3.0 + 30.0 * static_cast<double>(i), 1e-9);
  }
}

TEST(PeriodicFlow, DropoutRemovesTicks) {
  Fixture f;
  PeriodicFlowParams params;
  params.period_seconds = 10.0;
  params.dropout_prob = 0.5;
  params.jitter_stddev = 0.0;
  const auto events = generate_periodic_flow(
      "https://h/x", http::Method::kGet, "a", "u", 0.0, 10000.0, params,
      f.rng);
  EXPECT_LT(events.size(), 800u);
  EXPECT_GT(events.size(), 300u);
}

TEST(PeriodicFlow, JitteredEventsStayOrderedAndInWindow) {
  Fixture f;
  PeriodicFlowParams params;
  params.period_seconds = 5.0;
  params.jitter_stddev = 1.0;
  const auto events = generate_periodic_flow(
      "https://h/x", http::Method::kPost, "a", "u", 100.0, 400.0, params,
      f.rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, 100.0);
    EXPECT_LT(events[i].time, 400.0);
    if (i > 0) EXPECT_LE(events[i - 1].time, events[i].time);
    EXPECT_GT(events[i].request_bytes, 0u);  // POST telemetry carries a body
  }
}

TEST(PeriodicFlow, RejectsBadParameters) {
  Fixture f;
  PeriodicFlowParams params;
  params.period_seconds = 0.0;
  EXPECT_THROW((void)generate_periodic_flow("u", http::Method::kGet, "a", "u",
                                            0.0, 10.0, params, f.rng),
               std::invalid_argument);
  params.period_seconds = 1.0;
  params.jitter_stddev = -1.0;
  EXPECT_THROW((void)generate_periodic_flow("u", http::Method::kGet, "a", "u",
                                            0.0, 10.0, params, f.rng),
               std::invalid_argument);
}

TEST(PoissonBeacon, EmitsPostsAtApproximateRate) {
  Fixture f;
  const auto events = generate_poisson_beacon("https://h/t", "a", "u", 0.0,
                                              10000.0, 0.1, f.rng);
  EXPECT_NEAR(static_cast<double>(events.size()), 1000.0, 120.0);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.method, http::Method::kPost);
    EXPECT_GT(ev.request_bytes, 0u);
  }
}

}  // namespace
}  // namespace jsoncdn::workload
