// HyperLogLog (Flajolet et al. '07): distinct-count estimation in
// 2^precision one-byte registers. Standard error is ~1.04 / sqrt(2^p);
// small cardinalities fall back to linear counting over empty registers,
// which keeps the relative error within the same band across the range the
// flow-eligibility filters care about (tens to millions).
//
// Merge contract: register-wise max — commutative, associative, idempotent —
// so a sharded ingest merged in any order is bit-identical to the
// single-pass sketch, and the same element offered to several shards still
// counts once.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace jsoncdn::stream {

class HyperLogLog {
 public:
  // Requires 4 <= precision <= 18.
  explicit HyperLogLog(unsigned precision = 12);

  // Any 64-bit hash is acceptable input: add() applies a splitmix64
  // finalizer, so weakly-mixed hashes (fnv1a over near-identical strings)
  // do not bias the estimate.
  void add(std::uint64_t element_hash);
  void add(std::string_view element);

  // Bulk form over pre-hashed elements. Register updates are max() — order
  // independent — so this is bit-identical to n add() calls; the splitmix
  // finalizer runs through the vectorized batch kernel.
  void add_batch(const std::uint64_t* element_hashes, std::size_t n);

  // Bias-corrected cardinality estimate.
  [[nodiscard]] double estimate() const;

  // The configured standard relative error (1.04 / sqrt(m)).
  [[nodiscard]] double standard_error() const noexcept;

  // Requires matching precision; throws std::invalid_argument otherwise.
  void merge(const HyperLogLog& other);

  [[nodiscard]] unsigned precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t register_count() const noexcept {
    return registers_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return registers_.capacity() + sizeof(*this);
  }

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace jsoncdn::stream
