// Bounded retry with exponential backoff and deterministic jitter.
//
// The jitter for attempt `a` of request `key` is a pure function of
// (seed, key, a) — derived through stats::rng's splitmix64, never drawn
// from shared RNG state — so the full backoff schedule is identical across
// runs and thread counts, and can be recomputed anywhere for verification.
#pragma once

#include <cstdint>
#include <string_view>

namespace jsoncdn::faults {

struct RetryConfig {
  std::size_t max_retries = 2;       // re-attempts after the first try
  double base_delay_seconds = 0.05;  // delay before the first retry
  double multiplier = 2.0;           // exponential growth per attempt
  double jitter = 0.5;               // delay *= 1 + jitter * u, u in [0, 1)
  std::uint64_t seed = 0;            // jitter stream
};

// Simulated delay inserted before retry number `attempt` (0-based: attempt 0
// is the first retry) of the request identified by `key`.
[[nodiscard]] double backoff_delay(const RetryConfig& config,
                                   std::string_view key, std::size_t attempt);

}  // namespace jsoncdn::faults
