# Empty compiler generated dependencies file for ablation_push_timing.
# This may be replaced when dependencies are built.
