#include "oracle/detector_matrix.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <string>

#include "core/period_detector.h"

namespace jsoncdn::oracle {

namespace {

std::string fmt(double value) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << value;
  return out.str();
}

// Per-(scenario, strategy) accumulator across seeds.
struct CellSums {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double rel_error_sum = 0.0;
  std::size_t rel_error_count = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t eligible_truth = 0;

  void add(const DetectorScore& score) {
    precision += score.precision();
    recall += score.recall();
    f1 += score.f1();
    for (const double err : score.period_rel_errors) rel_error_sum += err;
    rel_error_count += score.period_rel_errors.size();
    true_positives += score.true_positives;
    false_positives += score.false_positives;
    false_negatives += score.false_negatives;
    eligible_truth += score.eligible_truth;
  }

  [[nodiscard]] DetectorCell finish(core::DetectorStrategy strategy,
                                    std::size_t seeds) const {
    DetectorCell cell;
    cell.strategy = strategy;
    const double n = seeds > 0 ? static_cast<double>(seeds) : 1.0;
    cell.precision = precision / n;
    cell.recall = recall / n;
    cell.f1 = f1 / n;
    cell.mean_period_rel_error =
        rel_error_count > 0
            ? rel_error_sum / static_cast<double>(rel_error_count)
            : 0.0;
    cell.true_positives = true_positives;
    cell.false_positives = false_positives;
    cell.false_negatives = false_negatives;
    cell.eligible_truth = eligible_truth;
    return cell;
  }
};

const ScenarioRow* find_row(const DetectorMatrixReport& report,
                            const std::string& scenario) {
  for (const auto& row : report.rows) {
    if (row.scenario == scenario) return &row;
  }
  return nullptr;
}

}  // namespace

DetectorMatrixReport run_detector_matrix(const DetectorMatrixConfig& config) {
  DetectorMatrixReport report;
  if (config.scenarios.empty() || config.strategies.empty() ||
      config.seeds.empty()) {
    report.failures.push_back(
        "detector matrix needs at least one scenario, strategy, and seed");
    return report;
  }

  // generate_case carrier: only the workload-shaping fields matter here.
  ConformanceConfig gen;
  gen.scale = config.scale;
  gen.duration_seconds = config.duration_seconds;
  gen.n_clients = config.n_clients;

  for (const auto& scenario : config.scenarios) {
    gen.scenario = scenario;
    std::vector<CellSums> sums(config.strategies.size());
    for (const auto seed : config.seeds) {
      // One workload per (scenario, seed): every strategy column is scored
      // on the same log and sidecar.
      const auto generated = generate_case(seed, gen);
      for (std::size_t s = 0; s < config.strategies.size(); ++s) {
        core::PeriodicityConfig pconfig;
        pconfig.strategy = config.strategies[s];
        pconfig.threads = config.threads;
        const auto analyzed = core::analyze_periodicity(generated.json, pconfig);
        sums[s].add(score_periodicity(analyzed, generated.truth,
                                      config.period_tolerance));
      }
    }
    ScenarioRow row;
    row.scenario = scenario;
    for (std::size_t s = 0; s < config.strategies.size(); ++s) {
      row.cells.push_back(
          sums[s].finish(config.strategies[s], config.seeds.size()));
    }
    report.rows.push_back(std::move(row));
  }

  // ---- Bands ----
  const auto default_strategy = config.strategies.front();
  const auto default_name = std::string(core::detector_name(default_strategy));
  const auto& benign = config.scenarios.front();

  if (const auto* row = find_row(report, benign)) {
    const double f1 = row->cells.front().f1;
    if (f1 < config.min_default_benign_f1) {
      report.failures.push_back(default_name + " F1 " + fmt(f1) + " on " +
                                benign + " < floor " +
                                fmt(config.min_default_benign_f1));
    }
  }
  for (std::size_t i = 1; i < config.scenarios.size(); ++i) {
    const auto* row = find_row(report, config.scenarios[i]);
    if (row == nullptr) continue;
    double best = 0.0;
    for (const auto& cell : row->cells) best = std::max(best, cell.f1);
    if (best < config.min_best_f1) {
      report.failures.push_back("best F1 " + fmt(best) + " on " +
                                row->scenario + " < floor " +
                                fmt(config.min_best_f1));
    }
  }
  for (const auto& scenario : config.must_improve) {
    const auto* row = find_row(report, scenario);
    if (row == nullptr) {
      report.failures.push_back("must-improve scenario " + scenario +
                                " missing from the matrix");
      continue;
    }
    const double default_f1 = row->cells.front().f1;
    double best_other = 0.0;
    for (std::size_t c = 1; c < row->cells.size(); ++c)
      best_other = std::max(best_other, row->cells[c].f1);
    if (best_other <= default_f1) {
      report.failures.push_back(
          "no strategy beats " + default_name + " on " + scenario + " (" +
          default_name + " F1 " + fmt(default_f1) + ", best alternative " +
          fmt(best_other) + ")");
    }
  }
  return report;
}

std::string render_detector_matrix(const DetectorMatrixReport& report) {
  std::ostringstream out;
  out << "detector matrix (seed-mean F1; P/R in brackets)\n";
  for (const auto& row : report.rows) {
    out << "  " << row.scenario << "\n";
    for (const auto& cell : row.cells) {
      out << "    " << std::left << std::setw(16)
          << core::detector_name(cell.strategy) << std::right << " F1 "
          << fmt(cell.f1) << "  [P " << fmt(cell.precision) << " R "
          << fmt(cell.recall) << "]  period-err "
          << fmt(cell.mean_period_rel_error) << "  tp/fp/fn "
          << cell.true_positives << "/" << cell.false_positives << "/"
          << cell.false_negatives << "\n";
    }
  }
  if (report.all_passed()) {
    out << "  bands: PASS\n";
  } else {
    out << "  bands: FAIL\n";
    for (const auto& failure : report.failures)
      out << "    " << failure << "\n";
  }
  return out.str();
}

std::string render_detector_matrix_table(const DetectorMatrixReport& report) {
  std::ostringstream out;
  out << "| scenario | detector | precision | recall | F1 | mean period err "
         "| tp | fp | fn |\n";
  out << "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& row : report.rows) {
    for (const auto& cell : row.cells) {
      out << "| " << row.scenario << " | " << core::detector_name(cell.strategy)
          << " | " << fmt(cell.precision) << " | " << fmt(cell.recall) << " | "
          << fmt(cell.f1) << " | " << fmt(cell.mean_period_rel_error) << " | "
          << cell.true_positives << " | " << cell.false_positives << " | "
          << cell.false_negatives << " |\n";
    }
  }
  return out.str();
}

}  // namespace jsoncdn::oracle
