// jsoncdn-validate — score the analyses against ground truth.
//
// File mode (grade one captured pair):
//   jsoncdn-validate --log FILE --truth FILE [--threads N] [--context N]
//
// Sweep mode (the conformance harness, end to end):
//   jsoncdn-validate --seed-sweep 1,7,1337 [--clients N] [--duration S]
//                    [--scale S] [--scenario NAME] [--hostile-share H]
//                    [--no-streaming] [--markdown]
//
// Overload experiment mode (flash crowd + scrapers, protected vs
// unprotected edge, graded against latency/hit-ratio bands):
//   jsoncdn-validate --overload [--seed N] [--scale S] [--clients N]
//                    [--hostile-share H] [--markdown]
//
// Detector-matrix mode (the period-detection portfolio, scenario × strategy,
// seed-swept and graded against the committed F1 bands):
//   jsoncdn-validate --detector-matrix [--seed-sweep S1,S2,...] [--scale S]
//                    [--clients N] [--duration S] [--threads N] [--markdown]
//
// Both modes print detector precision/recall/F1, n-gram accuracy next to
// its session-chain skyline, and the characterization marginal distances;
// sweep mode additionally runs the thread-count and batch-vs-streaming
// differential checks and exits non-zero on any band violation, so CI can
// gate on it directly. --markdown appends the EXPERIMENTS.md detector table.
// --detector NAME picks the period-detection strategy for file and sweep
// modes (--list-detectors enumerates them).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "core/period_detector.h"
#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "logs/zerocopy.h"
#include "oracle/conformance.h"
#include "oracle/detector_matrix.h"
#include "shard/reader.h"
#include "oracle/ground_truth.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: jsoncdn-validate --log FILE --truth FILE [--threads N]\n"
      "                        [--context N] [--detector NAME]\n"
      "       jsoncdn-validate --seed-sweep S1,S2,... [--clients N]\n"
      "                        [--duration SECONDS] [--scale S]\n"
      "                        [--scenario NAME] [--hostile-share H]\n"
      "                        [--detector NAME] [--no-streaming] "
      "[--markdown]\n"
      "       jsoncdn-validate --detector-matrix [--seed-sweep S1,S2,...]\n"
      "                        [--scale S] [--clients N] [--duration S]\n"
      "                        [--threads N] [--markdown]\n"
      "       jsoncdn-validate --overload [--seed N] [--scale S]\n"
      "                        [--clients N] [--hostile-share H] "
      "[--markdown]\n"
      "       jsoncdn-validate --list-detectors\n");
}

std::vector<std::uint64_t> parse_seed_list(const std::string& arg) {
  std::vector<std::uint64_t> seeds;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const auto comma = arg.find(',', start);
    const auto token = arg.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (token.empty()) {
      seeds.clear();
      return seeds;
    }
    seeds.push_back(static_cast<std::uint64_t>(std::strtoull(
        token.c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  std::string log_path;
  std::string truth_path;
  oracle::ConformanceConfig config;
  config.seeds.clear();
  oracle::OverloadExperimentConfig overload_config;
  bool overload = false;
  bool detector_matrix = false;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  bool markdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--log") {
      log_path = next();
    } else if (arg == "--truth") {
      truth_path = next();
    } else if (arg == "--seed-sweep") {
      config.seeds = parse_seed_list(next());
      if (config.seeds.empty()) {
        std::fprintf(stderr, "--seed-sweep needs a comma-separated list\n");
        return 2;
      }
    } else if (arg == "--overload") {
      overload = true;
    } else if (arg == "--detector-matrix") {
      detector_matrix = true;
    } else if (arg == "--detector") {
      const std::string name = next();
      try {
        config.detector = core::detector_strategy_from_name(name);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--list-detectors") {
      for (const auto& info : core::detector_registry()) {
        std::fprintf(stdout, "%-16s %s\n", std::string(info.name).c_str(),
                     std::string(info.summary).c_str());
      }
      return 0;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--scenario") {
      config.scenario = next();
    } else if (arg == "--hostile-share") {
      const double share = std::atof(next());
      if (share < 0.0 || share >= 1.0) {
        std::fprintf(stderr, "--hostile-share must be in [0, 1)\n");
        return 2;
      }
      config.hostile_share = share;
      overload_config.hostile_share = share;
    } else if (arg == "--clients") {
      config.n_clients = static_cast<std::size_t>(std::atoll(next()));
      overload_config.n_clients = config.n_clients;
    } else if (arg == "--duration") {
      config.duration_seconds = std::atof(next());
      overload_config.duration_seconds = config.duration_seconds;
    } else if (arg == "--scale") {
      config.scale = std::atof(next());
      overload_config.scale = config.scale;
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(next()));
      config.thread_counts = {threads};
    } else if (arg == "--context") {
      config.ngram_context = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--no-streaming") {
      config.check_streaming = false;
    } else if (arg == "--markdown") {
      markdown = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    if (detector_matrix) {
      oracle::DetectorMatrixConfig matrix;
      if (!config.seeds.empty()) matrix.seeds = config.seeds;
      if (config.scale > 0.0) matrix.scale = config.scale;
      if (config.duration_seconds > 0.0)
        matrix.duration_seconds = config.duration_seconds;
      if (config.n_clients > 0) matrix.n_clients = config.n_clients;
      matrix.threads = threads;
      const auto report = oracle::run_detector_matrix(matrix);
      std::fputs(oracle::render_detector_matrix(report).c_str(), stdout);
      if (markdown)
        std::fputs(oracle::render_detector_matrix_table(report).c_str(),
                   stdout);
      return report.all_passed() ? 0 : 1;
    }

    if (overload) {
      overload_config.seed = seed;
      const auto experiment =
          oracle::run_overload_experiment(overload_config);
      std::fputs(oracle::render_overload(experiment).c_str(), stdout);
      if (markdown)
        std::fputs(oracle::render_overload_table(experiment).c_str(), stdout);
      return experiment.passed() ? 0 : 1;
    }

    if (!config.seeds.empty()) {
      const auto report = oracle::run_conformance(config);
      std::fputs(oracle::render_conformance(report).c_str(), stdout);
      if (markdown) std::fputs(oracle::render_detector_table(report).c_str(),
                               stdout);
      return report.all_passed() ? 0 : 1;
    }

    if (log_path.empty() || truth_path.empty()) {
      usage();
      return 2;
    }
    logs::IngestReport ingest;
    // Zero-copy columnar ingest (or a direct .jlog v1/v2 load — dispatched
    // on the leading magic), then materialize the Dataset the oracle scorer
    // consumes — same records in every format.
    const auto table =
        shard::load_table_auto(log_path, logs::IngestOptions{}, &ingest);
    const auto dataset = table.to_dataset();
    if (dataset.empty()) {
      std::fprintf(stderr, "no records in %s\n", log_path.c_str());
      return 1;
    }
    if (ingest.malformed > 0) {
      std::fprintf(stderr, "warning: %llu malformed log line(s) skipped\n",
                   static_cast<unsigned long long>(ingest.malformed));
    }
    const auto truth = oracle::read_truth_file(truth_path);
    const auto json = dataset.json_only();
    const auto result = oracle::score_case(dataset, json, truth,
                                           /*seed=*/0, config, threads);
    std::fputs(oracle::render_case(result).c_str(), stdout);
    if (markdown) {
      oracle::ConformanceReport report;
      report.cases.push_back(result);
      std::fputs(oracle::render_detector_table(report).c_str(), stdout);
    }
    return result.passed() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jsoncdn-validate: %s\n", e.what());
    return 1;
  }
}
