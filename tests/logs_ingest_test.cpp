// Hardened log ingestion: exhaustive CacheStatus serialization coverage,
// per-reason malformed-line accounting, quarantine, the strict/permissive
// modes, the error budget, and header-version rejection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "logs/csv.h"
#include "logs/record.h"

namespace jsoncdn::logs {
namespace {

// Adding a CacheStatus enumerator must extend the count, the array, and the
// (to_string, parse) pair together; the switch in to_string has no default,
// so the compiler enforces the rest.
static_assert(kCacheStatusCount == 8,
              "update all_cache_statuses/to_string/parse_cache_status and "
              "this test when adding a CacheStatus");

TEST(CacheStatusCoverage, EveryStatusRoundTripsDistinctly) {
  std::vector<std::string> seen;
  for (const auto status : all_cache_statuses()) {
    const auto text = std::string(to_string(status));
    EXPECT_FALSE(text.empty());
    for (const auto& other : seen) EXPECT_NE(text, other);
    seen.push_back(text);

    CacheStatus parsed{};
    ASSERT_TRUE(parse_cache_status(text, parsed)) << text;
    EXPECT_EQ(parsed, status);
  }
  EXPECT_EQ(seen.size(), kCacheStatusCount);

  CacheStatus parsed{};
  EXPECT_FALSE(parse_cache_status("BOGUS", parsed));
  EXPECT_FALSE(parse_cache_status("", parsed));
}

TEST(CacheStatusCoverage, ErrorRecordRoundTripsThroughTsv) {
  LogRecord record;
  record.timestamp = 12.5;
  record.client_id = "abcd";
  record.user_agent = "ua/1.0";
  record.url = "https://api.shop-3.example/cart";
  record.domain = "api.shop-3.example";
  record.content_type = "application/json";
  record.status = 504;
  record.response_bytes = 0;
  record.cache_status = CacheStatus::kError;
  record.edge_id = 2;

  const auto parsed = from_line(to_line(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 504);
  EXPECT_EQ(parsed->cache_status, CacheStatus::kError);
  EXPECT_EQ(parsed->url, record.url);

  record.cache_status = CacheStatus::kStale;
  record.status = 200;
  const auto stale = from_line(to_line(record));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->cache_status, CacheStatus::kStale);
}

TEST(FromLineReasons, EachMalformationNamesItsField) {
  const auto good = to_line(LogRecord{});
  std::string reason;
  ASSERT_TRUE(from_line(good, &reason).has_value());

  // Columns: ts, client, ua, method, url, domain, ctype, status, resp,
  // req, cache_status, edge.
  const auto mutate = [&](std::size_t column, const std::string& value) {
    std::vector<std::string> fields;
    std::istringstream in(good);
    std::string field;
    while (std::getline(in, field, '\t')) fields.push_back(field);
    fields.at(column) = value;
    std::string out = fields[0];
    for (std::size_t i = 1; i < fields.size(); ++i) out += '\t' + fields[i];
    return out;
  };

  const std::vector<std::pair<std::string, std::string>> cases = {
      {"short\tline", "column-count"},
      {mutate(0, "noon"), "bad-timestamp"},
      {mutate(3, "YEET"), "bad-method"},
      {mutate(7, "2xx"), "bad-status"},
      {mutate(8, "-12"), "bad-response-bytes"},
      {mutate(9, "many"), "bad-request-bytes"},
      {mutate(10, "WARM"), "bad-cache-status"},
      {mutate(11, "edge-one"), "bad-edge-id"},
  };
  for (const auto& [line, expected] : cases) {
    std::string got;
    EXPECT_FALSE(from_line(line, &got).has_value()) << line;
    EXPECT_EQ(got, expected) << line;
  }
}

class IngestFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: ctest runs tests as separate parallel processes,
    // and a shared path races (one test's write clobbers another's read).
    path_ = ::testing::TempDir() + "jsoncdn_ingest_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_file(const std::vector<std::string>& lines,
                  bool with_header = true) {
    std::ofstream out(path_);
    if (with_header) out << log_header() << '\n';
    for (const auto& line : lines) out << line << '\n';
  }

  static std::string good_line(double ts) {
    LogRecord record;
    record.timestamp = ts;
    record.client_id = "c";
    record.url = "https://d/x";
    record.domain = "d";
    record.content_type = "application/json";
    return to_line(record);
  }

  std::string path_;
};

TEST_F(IngestFileTest, PermissiveSkipsCountsAndQuarantines) {
  write_file({good_line(1.0), "garbage line", good_line(2.0),
              "another\tbad\trow", good_line(3.0)});

  std::ostringstream quarantined;
  StreamQuarantine sink(quarantined);
  IngestOptions options;
  options.quarantine = &sink;

  IngestReport report;
  const auto dataset = ingest_log_file(path_, options, &report);

  EXPECT_EQ(dataset.size(), 3u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.malformed, 2u);
  EXPECT_EQ(report.lines, 6u);  // header + 5 data lines
  EXPECT_TRUE(report.header_seen);
  EXPECT_EQ(report.reasons.at("column-count"), 2u);
  EXPECT_NEAR(report.error_share(), 2.0 / 5.0, 1e-12);

  // Quarantine preserved both rows with their 1-based line numbers.
  EXPECT_EQ(sink.count(), 2u);
  const auto text = quarantined.str();
  EXPECT_NE(text.find("3\tcolumn-count\tgarbage line\n"), std::string::npos);
  EXPECT_NE(text.find("5\tcolumn-count\tanother\tbad\trow\n"),
            std::string::npos);

  const auto rendered = render_ingest_report(report);
  EXPECT_NE(rendered.find("column-count"), std::string::npos);
}

TEST_F(IngestFileTest, StrictThrowsNamingTheLine) {
  write_file({good_line(1.0), "garbage line", good_line(2.0)});
  IngestOptions options;
  options.mode = ParseMode::kStrict;
  try {
    (void)ingest_log_file(path_, options);
    FAIL() << "expected strict mode to throw";
  } catch (const std::runtime_error& e) {
    // Header is line 1, the bad row is line 3.
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("column-count"), std::string::npos)
        << e.what();
  }
}

TEST_F(IngestFileTest, ErrorBudgetAborts) {
  write_file({"bad one", "bad two", "bad three", good_line(1.0)});
  IngestOptions options;
  options.max_malformed = 1;
  EXPECT_THROW((void)ingest_log_file(path_, options), std::runtime_error);
}

TEST_F(IngestFileTest, UnsupportedHeaderVersionIsFatalEvenPermissive) {
  {
    std::ofstream out(path_);
    out << "#jsoncdn-log-v999\tfuture\tcolumns\n" << good_line(1.0) << '\n';
  }
  EXPECT_THROW((void)ingest_log_file(path_, IngestOptions{}),
               std::runtime_error);
}

TEST_F(IngestFileTest, ChunkedIngestMatchesWholeFile) {
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) lines.push_back(good_line(i));
  lines.insert(lines.begin() + 4, "broken");
  write_file(lines);

  IngestReport whole;
  const auto dataset = ingest_log_file(path_, IngestOptions{}, &whole);

  std::vector<LogRecord> streamed;
  const auto chunked = ingest_for_each_record(
      path_, /*chunk_size=*/3, IngestOptions{},
      [&](std::span<const LogRecord> chunk) {
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
      });

  EXPECT_EQ(chunked.records, whole.records);
  EXPECT_EQ(chunked.malformed, whole.malformed);
  EXPECT_EQ(chunked.reasons, whole.reasons);
  ASSERT_EQ(streamed.size(), dataset.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(to_line(streamed[i]), to_line(dataset.records()[i]));
  }
}

// ---- Oversized rows (adversarial ingest) ----------------------------------
//
// Malformed/oversized JSON traffic leaves multi-megabyte artifacts in real
// edge logs: huge URLs from buffer-stuffing clients, rows that are one giant
// field with no delimiters at all. Ingest must take them in stride — parse
// the valid ones, quarantine the invalid ones whole, and stay linear.

TEST_F(IngestFileTest, MultiMegabyteFieldRoundTrips) {
  LogRecord record;
  record.timestamp = 1.0;
  record.client_id = "c";
  record.url = "https://d/" + std::string(3u << 20, 'a');  // 3 MiB URL
  record.user_agent = std::string(1u << 20, 'u');          // 1 MiB UA
  record.domain = "d";
  record.content_type = "application/json";
  write_file({good_line(0.5), to_line(record), good_line(2.0)});

  IngestReport report;
  const auto dataset = ingest_log_file(path_, IngestOptions{}, &report);
  ASSERT_EQ(dataset.size(), 3u);
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_EQ(dataset.records()[1].url.size(), record.url.size());
  EXPECT_EQ(dataset.records()[1].user_agent, record.user_agent);

  // Strict mode accepts the same file: oversized is not malformed.
  IngestOptions strict;
  strict.mode = ParseMode::kStrict;
  EXPECT_EQ(ingest_log_file(path_, strict).size(), 3u);
}

TEST_F(IngestFileTest, OversizedSingleFieldRowQuarantinedWhole) {
  // One giant field, no tabs: the classic garbage row an attacker's broken
  // client writes. 4 MiB of it must cost one malformed count, not a crash.
  const std::string giant(4u << 20, 'x');
  write_file({good_line(1.0), giant, good_line(2.0)});

  std::ostringstream quarantined;
  StreamQuarantine sink(quarantined);
  IngestOptions options;
  options.quarantine = &sink;
  IngestReport report;
  const auto dataset = ingest_log_file(path_, options, &report);

  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(report.malformed, 1u);
  EXPECT_EQ(report.reasons.at("column-count"), 1u);
  // The quarantined row is preserved byte-for-byte, giant field included.
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_NE(quarantined.str().find(giant), std::string::npos);

  // Strict mode refuses it, naming the line, without the error budget.
  IngestOptions strict;
  strict.mode = ParseMode::kStrict;
  try {
    (void)ingest_log_file(path_, strict);
    FAIL() << "expected strict mode to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST_F(IngestFileTest, OversizedRowsIngestLinearly) {
  // 24 rows of ~1 MiB each. A parser that concatenates per character (or
  // re-scans the line per field) would go quadratic in the field size and
  // blow far past this generous wall-clock bound; linear ingest clears it
  // with an order of magnitude to spare even on slow CI.
  std::vector<std::string> lines;
  for (int i = 0; i < 24; ++i) {
    LogRecord record;
    record.timestamp = i;
    record.client_id = "c";
    record.url = "https://d/" + std::string(1u << 20, 'a' + (i % 26));
    record.domain = "d";
    record.content_type = "application/json";
    lines.push_back(to_line(record));
  }
  write_file(lines);

  const auto start = std::chrono::steady_clock::now();
  IngestReport report;
  const auto dataset = ingest_log_file(path_, IngestOptions{}, &report);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(dataset.size(), 24u);
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_LT(elapsed.count(), 20'000) << "oversized-row ingest is not linear";
}

TEST_F(IngestFileTest, MissingFileThrows) {
  EXPECT_THROW((void)ingest_log_file(path_ + ".nope", IngestOptions{}),
               std::runtime_error);
}

TEST(IngestReportMerge, CountersAndReasonsAdd) {
  IngestReport a;
  a.lines = 10;
  a.records = 8;
  a.malformed = 2;
  a.reasons["column-count"] = 2;
  IngestReport b;
  b.lines = 5;
  b.records = 4;
  b.malformed = 1;
  b.header_seen = true;
  b.reasons["bad-status"] = 1;

  a.merge(b);
  EXPECT_EQ(a.lines, 15u);
  EXPECT_EQ(a.records, 12u);
  EXPECT_EQ(a.malformed, 3u);
  EXPECT_TRUE(a.header_seen);
  EXPECT_EQ(a.reasons.at("column-count"), 2u);
  EXPECT_EQ(a.reasons.at("bad-status"), 1u);
}

}  // namespace
}  // namespace jsoncdn::logs
