// Shared helpers for the figure/table reproduction binaries: a uniform
// "paper vs measured" line format so EXPERIMENTS.md can be assembled from
// bench output directly.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace jsoncdn::bench {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

// One comparison row: the paper's reported value vs this reproduction.
inline void compare(const std::string& metric, double paper, double measured,
                    const std::string& unit = "") {
  std::printf("  %-42s paper: %8.3f%s   measured: %8.3f%s\n", metric.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

// Wall-clock stopwatch for stage-level timing (the figure benches measure
// shape, this measures speed).
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_timing(const std::string& stage, double seconds) {
  std::printf("  %-42s %10.3f s\n", stage.c_str(), seconds);
}

// One row of the parallel speedup report: serial vs N-thread wall clock.
inline void print_speedup(const std::string& stage, double serial_seconds,
                          double parallel_seconds, std::size_t threads) {
  std::printf(
      "  %-30s 1 thread: %8.3f s   %zu threads: %8.3f s   speedup: %5.2fx\n",
      stage.c_str(), serial_seconds, threads, parallel_seconds,
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0);
}

}  // namespace jsoncdn::bench
