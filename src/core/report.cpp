#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "stats/descriptive.h"

namespace jsoncdn::core {

namespace {

std::string pct(double v) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << v * 100.0 << "%";
  return out.str();
}

std::string period_label(double seconds) {
  std::ostringstream out;
  if (seconds >= 60.0 && std::fmod(seconds, 60.0) < 1e-9) {
    out << static_cast<int>(seconds / 60.0) << "m";
  } else {
    out << static_cast<int>(std::lround(seconds)) << "s";
  }
  return out.str();
}

}  // namespace

std::string render_growth(const std::vector<workload::QuarterStats>& series) {
  std::ostringstream out;
  out << "Figure 1: Ratio of JSON to HTML requests on the CDN\n";
  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(series.size());
  for (const auto& q : series) rows.emplace_back(q.label, q.json_html_ratio);
  out << stats::ascii_bar_chart(rows);
  if (!series.empty()) {
    out << "  mean JSON bytes: " << std::fixed << std::setprecision(0)
        << series.front().mean_json_bytes << " (start) -> "
        << series.back().mean_json_bytes << " (end), change "
        << pct(series.back().mean_json_bytes /
                   std::max(1.0, series.front().mean_json_bytes) -
               1.0)
        << "\n";
  }
  return out.str();
}

std::string render_source(const SourceBreakdown& source) {
  std::ostringstream out;
  out << "Figure 3: Categorization by device type (share of JSON requests)\n";
  std::vector<std::pair<std::string, double>> rows = {
      {"mobile", source.device_share(http::DeviceType::kMobile)},
      {"embedded", source.device_share(http::DeviceType::kEmbedded)},
      {"desktop", source.device_share(http::DeviceType::kDesktop)},
      {"unknown", source.device_share(http::DeviceType::kUnknown)},
  };
  out << stats::ascii_bar_chart(rows);
  out << "  UA-string distribution: mobile "
      << pct(source.ua_string_share(http::DeviceType::kMobile)) << ", embedded "
      << pct(source.ua_string_share(http::DeviceType::kEmbedded))
      << ", desktop " << pct(source.ua_string_share(http::DeviceType::kDesktop))
      << ", unknown " << pct(source.ua_string_share(http::DeviceType::kUnknown))
      << "\n";
  out << "  non-browser traffic: " << pct(source.non_browser_share())
      << "   mobile-browser traffic: " << pct(source.mobile_browser_share())
      << "\n";
  return out.str();
}

std::string render_headline(const MethodMix& methods,
                            const CacheabilityStats& cache,
                            const SizeComparison& sizes) {
  std::ostringstream out;
  out << "Section 4 headline statistics (JSON traffic)\n"
      << "  GET share:                 " << pct(methods.get_share()) << "\n"
      << "  POST share of non-GET:     " << pct(methods.post_share_of_non_get())
      << "\n"
      << "  uncacheable share:         " << pct(cache.uncacheable_share())
      << "\n"
      << "  edge hit share:            " << pct(cache.hit_share()) << "\n"
      << "  JSON p50 / HTML p50:       " << std::fixed << std::setprecision(2)
      << sizes.p50_ratio() << "  (JSON " << pct(1.0 - sizes.p50_ratio())
      << " smaller)\n"
      << "  JSON p75 / HTML p75:       " << sizes.p75_ratio() << "  (JSON "
      << pct(1.0 - sizes.p75_ratio()) << " smaller)\n";
  return out.str();
}

std::string render_status(const StatusBreakdown& status) {
  const bool error_free = status.server_error_5xx == 0 &&
                          status.stale_served == 0 &&
                          status.error_cache_status == 0 &&
                          status.shed == 0 && status.throttled == 0;
  if (error_free) return "";
  std::ostringstream out;
  out << "Response status mix (origin faults visible in the log)\n"
      << "  2xx: " << status.ok_2xx << "   3xx: " << status.redirect_3xx
      << "   4xx: " << status.client_error_4xx
      << "   5xx: " << status.server_error_5xx << " (of which 504: "
      << status.gateway_timeout_504 << ")\n"
      << "  error share:               " << pct(status.error_share()) << "\n"
      << "  stale-if-error responses:  " << status.stale_served << " ("
      << pct(status.absorbed_share()) << " of requests)\n"
      << "  records logged ERROR:      " << status.error_cache_status << "\n";
  if (status.shed != 0 || status.throttled != 0) {
    out << "  overload rejections:       " << status.shed << " shed, "
        << status.throttled << " throttled ("
        << pct(status.rejected_share()) << " of requests)\n";
  }
  return out.str();
}

std::string render_heatmap(const CacheabilityHeatmap& heatmap) {
  static constexpr const char* kShades[] = {" ", ".", ":", "-", "=",
                                            "+", "*", "#", "%", "@"};
  std::ostringstream out;
  out << "Figure 4: Heatmap of domain cacheability by category\n";
  out << "  (rows: industry; cols: cacheable share 0.0 -> 1.0; darker = more "
         "domains)\n";
  std::size_t label_width = 0;
  for (const auto& c : heatmap.categories)
    label_width = std::max(label_width, c.size());
  for (std::size_t r = 0; r < heatmap.categories.size(); ++r) {
    out << "  " << std::left << std::setw(static_cast<int>(label_width + 2))
        << heatmap.categories[r] << "|";
    for (const double cell : heatmap.density[r]) {
      auto shade = static_cast<std::size_t>(cell * 9.999);
      shade = std::min<std::size_t>(shade, 9);
      out << kShades[shade];
    }
    out << "|\n";
  }
  out << "  never-cache domains: " << pct(heatmap.never_cache_domain_share)
      << "   always-cache domains: " << pct(heatmap.always_cache_domain_share)
      << "\n";
  return out.str();
}

std::string render_period_histogram(const std::vector<double>& periods) {
  std::ostringstream out;
  out << "Figure 5: Histogram of JSON object periods (" << periods.size()
      << " periodic objects)\n";
  // Count per canonical label with +/-15% capture windows; everything else
  // lands in "other".
  static constexpr double kSpikes[] = {30, 45, 60, 75, 120, 180,
                                       300, 600, 900, 1800};
  std::vector<std::pair<std::string, double>> rows;
  std::size_t other = 0;
  std::vector<std::size_t> counts(std::size(kSpikes), 0);
  for (const double p : periods) {
    bool placed = false;
    for (std::size_t s = 0; s < std::size(kSpikes); ++s) {
      if (std::abs(p - kSpikes[s]) / kSpikes[s] <= 0.15) {
        ++counts[s];
        placed = true;
        break;
      }
    }
    if (!placed) ++other;
  }
  for (std::size_t s = 0; s < std::size(kSpikes); ++s) {
    rows.emplace_back(period_label(kSpikes[s]),
                      static_cast<double>(counts[s]));
  }
  rows.emplace_back("other", static_cast<double>(other));
  out << stats::ascii_bar_chart(rows);
  return out.str();
}

std::string render_periodic_client_cdf(const std::vector<double>& shares) {
  std::ostringstream out;
  out << "Figure 6: CDF of the percent of periodic clients across objects\n";
  if (shares.empty()) {
    out << "  (no periodic objects)\n";
    return out.str();
  }
  stats::EmpiricalCdf cdf{std::vector<double>(shares)};
  std::vector<std::pair<std::string, double>> rows;
  for (const double x : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    rows.emplace_back("<=" + pct(x), cdf.at(x));
  }
  out << stats::ascii_bar_chart(rows);
  out << "  objects with majority (>50%) periodic clients: "
      << pct(1.0 - cdf.at(0.5)) << "\n";
  return out.str();
}

std::string render_periodicity_summary(const PeriodicityReport& report) {
  std::ostringstream out;
  out << "Section 5.1 periodicity summary\n"
      << "  analyzed objects:            " << report.objects.size() << "\n"
      << "  periodic objects:            " << report.object_periods.size()
      << "\n"
      << "  periodic request share:      " << pct(report.periodic_request_share)
      << "\n"
      << "  periodic uncacheable share:  "
      << pct(report.periodic_uncacheable_share) << "\n"
      << "  periodic upload share:       " << pct(report.periodic_upload_share)
      << "\n";
  return out.str();
}

std::string render_ngram_table(const std::vector<NgramAccuracy>& rows) {
  std::ostringstream out;
  out << "Table 3: NGram model accuracy for URLs\n";
  out << "  N  feature     ";
  // Columns from the first row's K set.
  if (!rows.empty()) {
    for (const auto& [k, acc] : rows.front().accuracy_at) {
      out << " K=" << std::left << std::setw(6) << k;
    }
  }
  out << "predictions\n";
  for (const auto& row : rows) {
    out << "  " << std::left << std::setw(3) << row.context_len
        << std::setw(12) << (row.clustered ? "clustered" : "actual");
    for (const auto& [k, acc] : row.accuracy_at) {
      out << " " << std::fixed << std::setprecision(3) << std::setw(8) << acc;
    }
    out << row.predictions << "\n";
  }
  return out.str();
}

}  // namespace jsoncdn::core
