// Scalar build of the shared kernel bodies: compiled with
// auto-vectorization disabled (see src/stats/CMakeLists.txt) so this TU is
// the straight-line reference the SIMD build must match bit for bit.
#define JSONCDN_KERNEL_NS kernels_scalar
#include "stats/kernels_impl.h"
