// Log (de)serialization as TSV — one record per line, tab-separated, with
// URL-style escaping of tabs/newlines inside fields. Edge servers in the
// simulator stream records through a LogWriter; analyses that want to work
// from files read them back with LogReader. Round-trip is lossless
// (property-tested).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logs/record.h"

namespace jsoncdn::logs {

// Header line identifying the column layout / format version.
[[nodiscard]] std::string_view log_header() noexcept;

// Serializes one record to a single line (no trailing newline).
[[nodiscard]] std::string to_line(const LogRecord& record);

// Parses one line. Returns nullopt on malformed input (wrong column count,
// non-numeric numerics, unknown enums) — malformed log lines are data errors,
// skipped and counted by the reader, never exceptions.
[[nodiscard]] std::optional<LogRecord> from_line(std::string_view line);

// Streams records to an ostream, writing the header first.
class LogWriter {
 public:
  explicit LogWriter(std::ostream& out);
  void write(const LogRecord& record);
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

// Reads records from an istream; tolerates and counts malformed lines.
class LogReader {
 public:
  explicit LogReader(std::istream& in);
  // Reads everything that remains.
  [[nodiscard]] std::vector<LogRecord> read_all();
  [[nodiscard]] std::uint64_t malformed_lines() const noexcept {
    return malformed_;
  }

 private:
  std::istream& in_;
  std::uint64_t malformed_ = 0;
};

}  // namespace jsoncdn::logs
