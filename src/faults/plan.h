// Deterministic fault-injection plan for the edge<->origin path.
//
// Production edge logs — the paper's raw material — are full of origin
// errors, timeouts, and partial responses; a characterization pipeline that
// has only ever seen status-200 records is untested against the traffic it
// claims to handle. FaultPlan schedules per-origin failures (error bursts,
// latency spikes, hung connections, truncated bodies, whole-origin outage
// windows) as a *pure function* of (seed, origin, request ordinal, time):
// every decision is derived through stats::rng's splitmix64 chain, never
// from shared mutable RNG state, so a run is bit-reproducible regardless of
// how calls interleave and two runs with the same seed produce identical
// fault sequences.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/rng.h"

namespace jsoncdn::faults {

// What the injected origin does with one request.
enum class FaultOutcome {
  kOk,         // healthy response (possibly with a latency spike)
  kError,      // immediate 5xx (500/502/503)
  kTimeout,    // connection hangs; the edge gives up at its timeout budget
  kTruncated,  // 200 with a partial body — unusable, treated as a failure
};

[[nodiscard]] std::string_view to_string(FaultOutcome o) noexcept;

struct FaultDecision {
  FaultOutcome outcome = FaultOutcome::kOk;
  int status = 200;                 // 5xx for kError; 200 otherwise
  double latency_multiplier = 1.0;  // >1 on a latency spike (kOk only)
  bool outage = false;              // decision forced by an outage window
};

// One scheduled whole-origin outage: every request in [start, end) fails
// with 503 regardless of the per-request draws.
struct OutageWindow {
  double start = 0.0;
  double end = 0.0;
};

struct FaultPlanConfig {
  bool enabled = false;      // master switch: disabled => every decision kOk
  std::uint64_t seed = 0;    // all randomness derives from this

  // Per-request probabilities, evaluated independently per origin request.
  double error_rate = 0.0;          // immediate 5xx
  double timeout_rate = 0.0;        // hung connection
  double truncate_rate = 0.0;       // partial body
  double latency_spike_rate = 0.0;  // slow-but-correct response
  double latency_spike_multiplier = 8.0;

  // Scheduled outages: each origin draws a Poisson-like number of windows
  // over [0, horizon_seconds) with exponential durations. horizon == 0 or
  // outages_per_origin == 0 disables outage scheduling.
  double horizon_seconds = 0.0;
  double outages_per_origin = 0.0;
  double mean_outage_seconds = 60.0;
};

// Reads JSONCDN_FAULT_SEED from the environment (the CI fault matrix sets
// it); returns `fallback` when unset or unparsable.
[[nodiscard]] std::uint64_t env_fault_seed(std::uint64_t fallback) noexcept;

class FaultPlan {
 public:
  FaultPlan() = default;  // disabled plan: decide() always returns kOk
  explicit FaultPlan(const FaultPlanConfig& config);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const FaultPlanConfig& config() const noexcept {
    return config_;
  }

  // Decision for the k-th request ever sent to `origin_key`, arriving at
  // simulation time `now`. Pure: depends only on (seed, origin_key, k, now),
  // so it is safe to call concurrently and replays identically.
  [[nodiscard]] FaultDecision decide(std::string_view origin_key,
                                     std::uint64_t k, double now) const;

  // Stateful convenience for the serial simulator: tracks the per-origin
  // request ordinal internally and forwards to decide().
  FaultDecision next(std::string_view origin_key, double now);

  // The outage windows scheduled for one origin (sorted, non-overlapping).
  [[nodiscard]] std::vector<OutageWindow> outages(
      std::string_view origin_key) const;
  [[nodiscard]] bool in_outage(std::string_view origin_key,
                               double now) const;

 private:
  // Per-request draw only — no outage check. decide()/next() layer the
  // outage windows on top.
  [[nodiscard]] FaultDecision draw(std::string_view origin_key,
                                   std::uint64_t k) const;

  struct OriginState {
    std::uint64_t ordinal = 0;
    bool windows_computed = false;
    std::vector<OutageWindow> windows;
  };

  FaultPlanConfig config_;
  std::unordered_map<std::string, OriginState> origins_;
};

}  // namespace jsoncdn::faults
