#include "stats/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace jsoncdn::stats {

namespace {

// Set while a thread is executing tasks for a pool; lets run() detect
// re-entrant use from inside one of its own tasks and fall back to inline
// execution instead of deadlocking on run_mu_.
thread_local const ThreadPool* t_current_pool = nullptr;

struct CurrentPoolGuard {
  const ThreadPool* previous;
  explicit CurrentPoolGuard(const ThreadPool* pool)
      : previous(t_current_pool) {
    t_current_pool = pool;
  }
  ~CurrentPoolGuard() { t_current_pool = previous; }
};

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("JSONCDN_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0)
      return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = std::max<std::size_t>(1, resolve_threads(threads));
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  CurrentPoolGuard guard(this);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || next_ < n_tasks_; });
    if (stop_) return;
    drain(lock);
  }
}

void ThreadPool::drain(std::unique_lock<std::mutex>& lock) {
  while (next_ < n_tasks_) {
    const std::size_t index = next_++;
    ++active_;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*task_)(index);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !error_) error_ = std::move(err);
    --active_;
  }
  if (active_ == 0) done_cv_.notify_all();
}

void ThreadPool::run(std::size_t n_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (n_tasks == 0) return;
  if (workers_.empty() || t_current_pool == this) {
    // Single-threaded pool, or nested call from one of our own tasks: the
    // plain loop is both deadlock-free and trivially deterministic.
    for (std::size_t i = 0; i < n_tasks; ++i) task(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &task;
  n_tasks_ = n_tasks;
  next_ = 0;
  error_ = nullptr;
  work_cv_.notify_all();
  {
    CurrentPoolGuard guard(this);
    drain(lock);
  }
  done_cv_.wait(lock, [&] { return next_ >= n_tasks_ && active_ == 0; });
  task_ = nullptr;
  n_tasks_ = 0;
  next_ = 0;
  if (error_) {
    std::exception_ptr err = std::move(error_);
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t chunk_count(const ThreadPool& pool, std::size_t n) {
  if (n == 0) return 0;
  if (pool.thread_count() == 1) return 1;
  // 4 chunks per thread: enough slack for skewed per-item cost without
  // drowning small inputs in scheduling overhead.
  return std::min(n, pool.thread_count() * 4);
}

std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t chunks,
                                                std::size_t c) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t begin = c * base + std::min(c, rem);
  const std::size_t end = begin + base + (c < rem ? 1 : 0);
  return {begin, end};
}

void parallel_for(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(pool, n);
  pool.run(chunks, [&](std::size_t c) {
    const auto [begin, end] = chunk_range(n, chunks, c);
    body(begin, end, c);
  });
}

}  // namespace jsoncdn::stats
