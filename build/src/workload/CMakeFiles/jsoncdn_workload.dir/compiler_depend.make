# Empty compiler generated dependencies file for jsoncdn_workload.
# This may be replaced when dependencies are built.
