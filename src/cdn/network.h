// Multi-edge CDN network: maps clients to edge servers (sticky, hash-based —
// a stand-in for geographic request routing) and turns a workload event
// stream into the edge-log Dataset the analysis layer consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdn/edge.h"
#include "cdn/origin.h"
#include "faults/plan.h"
#include "logs/anonymizer.h"
#include "logs/dataset.h"
#include "workload/catalog.h"
#include "workload/sessions.h"

namespace jsoncdn::cdn {

struct NetworkParams {
  std::size_t edge_count = 3;  // the paper's long-term capture used three
                               // vantage points
  EdgeParams edge;
  OriginParams origin;
  std::uint64_t anonymization_salt = 0x6a736f6e63646eULL;  // "jsoncdn"
  // Deterministic origin fault injection (disabled by default, in which case
  // the network behaves bit-identically to a fault-free build).
  faults::FaultPlanConfig faults;
};

class CdnNetwork {
 public:
  CdnNetwork(const workload::ObjectCatalog& catalog,
             const NetworkParams& params);

  // Routes every event to its edge, in order, collecting the logs.
  // `policy` is shared by all edges (may be nullptr).
  [[nodiscard]] logs::Dataset run(
      const std::vector<workload::RequestEvent>& events,
      PrefetchPolicy* policy = nullptr);

  // Aggregate metrics across all edges.
  [[nodiscard]] DeliveryMetrics total_metrics() const;
  // Aggregate resilience counters across all edges.
  [[nodiscard]] ResilienceMetrics total_resilience() const;
  // Aggregate human/machine delivery split (empty unless the overload
  // capacity model is on).
  [[nodiscard]] TwoClassDelivery total_two_class() const;
  // Every breaker state change on any edge, sorted by (time, edge, domain) —
  // the replayable incident timeline two identically-seeded runs must agree
  // on byte-for-byte.
  [[nodiscard]] std::vector<BreakerEvent> breaker_timeline() const;
  [[nodiscard]] const faults::FaultPlan& fault_plan() const noexcept {
    return fault_plan_;
  }
  [[nodiscard]] const std::vector<EdgeServer>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const Origin& origin() const noexcept { return origin_; }
  [[nodiscard]] const logs::Anonymizer& anonymizer() const noexcept {
    return anonymizer_;
  }

  // Sticky client -> edge mapping.
  [[nodiscard]] std::size_t edge_for(std::string_view client_address) const;

 private:
  faults::FaultPlan fault_plan_;
  Origin origin_;
  logs::Anonymizer anonymizer_;
  std::vector<EdgeServer> edges_;
};

}  // namespace jsoncdn::cdn
