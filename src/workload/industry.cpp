#include "workload/industry.h"

#include <stdexcept>

namespace jsoncdn::workload {

std::string_view to_string(Industry i) noexcept {
  switch (i) {
    case Industry::kFinancialServices: return "Financial Services";
    case Industry::kStreaming: return "Streaming";
    case Industry::kGaming: return "Gaming";
    case Industry::kNewsMedia: return "News/Media";
    case Industry::kSports: return "Sports";
    case Industry::kEntertainment: return "Entertainment";
    case Industry::kRetail: return "Retail";
    case Industry::kTechnology: return "Technology";
    case Industry::kTravel: return "Travel";
    case Industry::kSocialMedia: return "Social Media";
    case Industry::kAdvertising: return "Advertising";
  }
  return "Unknown";
}

const CacheabilityProfile& cacheability_profile(Industry i) noexcept {
  // Shares are tuned so that across the default category mix ~50% of
  // domains never cache and ~30% always cache (Fig. 4 discussion in §4).
  static constexpr CacheabilityProfile kFinancial{0.88, 0.04, 0.05, 0.35};
  static constexpr CacheabilityProfile kStreaming{0.82, 0.06, 0.10, 0.40};
  static constexpr CacheabilityProfile kGaming{0.78, 0.08, 0.10, 0.45};
  static constexpr CacheabilityProfile kNews{0.10, 0.70, 0.50, 0.95};
  static constexpr CacheabilityProfile kSports{0.12, 0.62, 0.45, 0.95};
  static constexpr CacheabilityProfile kEntertainment{0.18, 0.55, 0.40, 0.90};
  static constexpr CacheabilityProfile kRetail{0.55, 0.18, 0.20, 0.70};
  static constexpr CacheabilityProfile kTechnology{0.45, 0.25, 0.20, 0.80};
  static constexpr CacheabilityProfile kTravel{0.60, 0.12, 0.15, 0.60};
  static constexpr CacheabilityProfile kSocial{0.70, 0.08, 0.10, 0.50};
  static constexpr CacheabilityProfile kAds{0.65, 0.10, 0.10, 0.55};
  switch (i) {
    case Industry::kFinancialServices: return kFinancial;
    case Industry::kStreaming: return kStreaming;
    case Industry::kGaming: return kGaming;
    case Industry::kNewsMedia: return kNews;
    case Industry::kSports: return kSports;
    case Industry::kEntertainment: return kEntertainment;
    case Industry::kRetail: return kRetail;
    case Industry::kTechnology: return kTechnology;
    case Industry::kTravel: return kTravel;
    case Industry::kSocialMedia: return kSocial;
    case Industry::kAdvertising: return kAds;
  }
  return kTechnology;
}

double sample_domain_cacheable_share(Industry i, stats::Rng& rng) {
  const auto& p = cacheability_profile(i);
  const double u = rng.uniform();
  if (u < p.never_share) return 0.0;
  if (u < p.never_share + p.always_share) return 1.0;
  return rng.uniform(p.mid_lo, p.mid_hi);
}

}  // namespace jsoncdn::workload
