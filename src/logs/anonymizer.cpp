#include "logs/anonymizer.h"

#include "stats/hash.h"

namespace jsoncdn::logs {

std::string Anonymizer::pseudonym(std::string_view client_address) const {
  const auto h =
      stats::fnv1a64(client_address, stats::fnv1a64_mix(salt_));
  return stats::to_hex64(h);
}

}  // namespace jsoncdn::logs
