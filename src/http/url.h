// URL parsing and normalization. The ngram predictor (§5.2) keys on request
// URLs and the clustered variant collapses client-specific path/query tokens,
// so the parser exposes path segments and query arguments individually.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jsoncdn::http {

// Decomposed absolute-or-relative URL. Only the components the CDN log
// pipeline needs: scheme, host, port, path segments, query args. Fragments
// are parsed but never sent to servers, so they are stripped.
struct Url {
  std::string scheme;          // lowercase; empty for scheme-relative input
  std::string host;            // lowercase; empty for path-only input
  std::optional<int> port;     // explicit port only
  std::vector<std::string> path_segments;
  std::vector<std::pair<std::string, std::string>> query;  // decoded order kept

  // Reassembles a normalized URL string: lowercase scheme/host, no default
  // ports, "/"-joined path, original query order.
  [[nodiscard]] std::string str() const;
  // Path component only, starting with "/".
  [[nodiscard]] std::string path() const;

  bool operator==(const Url&) const = default;
};

// Parses an absolute URL ("https://host[:port]/path?query") or an
// origin-relative one ("/path?query"). Returns nullopt for structurally
// invalid input (empty host in an absolute URL, non-numeric port, port
// outside [1, 65535]).
[[nodiscard]] std::optional<Url> parse_url(std::string_view raw);

// Percent-decodes a URL component; malformed escapes are kept literally
// (logs contain sloppy URLs; dropping them would bias the traffic counts).
[[nodiscard]] std::string url_decode(std::string_view s);

// Percent-encodes characters outside the unreserved set.
[[nodiscard]] std::string url_encode(std::string_view s);

}  // namespace jsoncdn::http
