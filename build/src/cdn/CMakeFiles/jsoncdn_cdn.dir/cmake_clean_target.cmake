file(REMOVE_RECURSE
  "libjsoncdn_cdn.a"
)
