// Figure 4: "Heatmap of domain cacheability by category" — per-industry
// distribution of per-domain cacheable shares, plus the Section 4 aggregate:
// ~50% of domains never cache, ~30% always cache.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/report.h"
#include "core/study.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  bench::print_header("Figure 4",
                      "domain cacheability heatmap by industry (short-term)");

  core::StudyConfig config;
  config.workload = workload::short_term_scenario(scale);
  const auto result = core::run_study(config);

  std::fputs(core::render_heatmap(*result.heatmap).c_str(), stdout);
  std::printf("\n");
  bench::compare("never-cache domain share", 0.50,
                 result.heatmap->never_cache_domain_share);
  bench::compare("always-cache domain share", 0.30,
                 result.heatmap->always_cache_domain_share);
  bench::note("paper: Financial Services / Streaming / Gaming cluster at the "
              "never-cache edge;");
  bench::note("       News/Media / Sports / Entertainment cluster at the "
              "always-cache edge.");
  return 0;
}
