// Manifest-driven news app scenario (§2.3 Table 1 + §5.2): mobile apps fetch
// a stories manifest and then article objects. The example trains the
// backoff ngram model on a day of logs, reports Table-3-style accuracy, and
// replays a second day through the CDN with ngram prefetching enabled to
// measure the cache-hit-ratio lift the paper projects.
//
//   $ ./news_app_prefetch [n_clients]
//
#include <cstdlib>
#include <iostream>

#include "cdn/network.h"
#include "core/ngram.h"
#include "core/prefetch.h"
#include "core/report.h"
#include "workload/generator.h"

namespace {

jsoncdn::workload::GeneratorConfig news_config(std::uint64_t seed,
                                               std::size_t n_clients) {
  jsoncdn::workload::GeneratorConfig config;
  config.seed = seed;
  config.catalog_seed = 900;  // both days share one app ecosystem
  config.duration_seconds = 4 * 3600.0;
  config.n_clients = n_clients;
  config.catalog.domains_per_industry = 2;
  // App-dominated population: the news-app use case.
  config.shares = {0.78, 0.04, 0.03, 0.05, 0.02, 0.06, 0.02};
  config.mean_sessions_per_client = 3.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  const std::size_t n_clients =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 3000;

  // Day 1: training traffic. Day 2: same app ecosystem (same catalog seed
  // would differ — we reuse one generator and two event streams by varying
  // only the client population seed via the workload seed).
  workload::WorkloadGenerator train_gen(news_config(501, n_clients));
  const auto train_events = train_gen.generate();
  cdn::CdnNetwork train_network(train_gen.catalog().objects(), {});
  const auto train_logs = train_network.run(train_events.events);
  const auto train_json = train_logs.json_only();

  std::cout << "news app scenario: " << n_clients << " clients, "
            << train_json.size() << " training JSON records\n\n";

  // --- Table-3-style accuracy on held-out clients. -------------------------
  std::vector<core::NgramAccuracy> rows;
  for (const bool clustered : {false, true}) {
    core::NgramEvalConfig eval;
    eval.context_len = 1;
    eval.clustered = clustered;
    rows.push_back(core::evaluate_ngram(train_json, eval));
  }
  std::cout << core::render_ngram_table(rows) << "\n";

  // --- Prefetching replay. -------------------------------------------------
  auto model = core::train_prefetch_model(train_json, /*context_len=*/2);
  std::cout << "trained prefetch model: " << model.vocabulary_size()
            << " URLs, " << model.observed_transitions() << " transitions\n\n";

  workload::WorkloadGenerator replay_gen(news_config(502, n_clients));
  const auto replay = replay_gen.generate();

  cdn::CdnNetwork baseline(train_gen.catalog().objects(), {});
  (void)baseline.run(replay.events);
  const auto base_metrics = baseline.total_metrics();

  core::PrefetcherParams pparams;
  core::NgramPrefetcher prefetcher(std::move(model), pparams);
  cdn::CdnNetwork prefetching(train_gen.catalog().objects(), {});
  (void)prefetching.run(replay.events, &prefetcher);
  const auto pf_metrics = prefetching.total_metrics();

  std::cout << "replay without prefetch: cacheable hit ratio "
            << base_metrics.cacheable_hit_ratio() << ", median latency "
            << base_metrics.latency_summary().p50 * 1000.0 << " ms\n";
  std::cout << "replay with ngram prefetch: cacheable hit ratio "
            << pf_metrics.cacheable_hit_ratio() << ", median latency "
            << pf_metrics.latency_summary().p50 * 1000.0 << " ms\n";
  std::cout << "prefetches issued: " << pf_metrics.prefetches_issued()
            << ", useful: " << pf_metrics.useful_prefetches() << " (waste "
            << pf_metrics.prefetch_waste() * 100.0 << "%)\n";
  return 0;
}
