#include "logs/dataset.h"

#include <gtest/gtest.h>

namespace jsoncdn::logs {
namespace {

LogRecord make(double t, const std::string& client, const std::string& url,
               http::Method method = http::Method::kGet,
               CacheStatus cache = CacheStatus::kHit) {
  LogRecord r;
  r.timestamp = t;
  r.client_id = client;
  r.user_agent = "ua";
  r.url = url;
  r.domain = "d.example";
  r.content_type = "application/json";
  r.method = method;
  r.cache_status = cache;
  return r;
}

TEST(Dataset, SortByTimeIsStable) {
  Dataset ds;
  ds.add(make(2.0, "a", "u1"));
  ds.add(make(1.0, "b", "u2"));
  ds.add(make(1.0, "c", "u3"));
  ds.sort_by_time();
  EXPECT_EQ(ds[0].client_id, "b");
  EXPECT_EQ(ds[1].client_id, "c");  // equal keys keep insertion order
  EXPECT_EQ(ds[2].client_id, "a");
}

TEST(Dataset, FilterPreservesOrder) {
  Dataset ds;
  ds.add(make(1.0, "a", "u1"));
  ds.add(make(2.0, "b", "u2"));
  ds.add(make(3.0, "a", "u3"));
  const auto out =
      ds.filter([](const LogRecord& r) { return r.client_id == "a"; });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].url, "u1");
  EXPECT_EQ(out[1].url, "u3");
}

TEST(Dataset, JsonOnlyUsesMimeClassifier) {
  Dataset ds;
  auto r1 = make(1.0, "a", "u1");
  r1.content_type = "application/json; charset=utf-8";
  auto r2 = make(2.0, "a", "u2");
  r2.content_type = "text/html";
  auto r3 = make(3.0, "a", "u3");
  r3.content_type = "application/vnd.api+json";
  ds.add(r1);
  ds.add(r2);
  ds.add(r3);
  EXPECT_EQ(ds.json_only().size(), 2u);
}

TEST(Dataset, TimeRangeAndDistincts) {
  Dataset ds;
  EXPECT_EQ(ds.time_range(), (std::pair<double, double>{0.0, 0.0}));
  ds.add(make(5.0, "a", "u1"));
  ds.add(make(2.0, "b", "u1"));
  ds.add(make(9.0, "a", "u2"));
  EXPECT_EQ(ds.time_range(), (std::pair<double, double>{2.0, 9.0}));
  EXPECT_EQ(ds.distinct_objects(), 2u);
  EXPECT_EQ(ds.distinct_clients(), 2u);
  EXPECT_EQ(ds.distinct_domains(), 1u);
}

TEST(ExtractObjectFlows, AppliesClientAndRequestFilters) {
  Dataset ds;
  // Object u1: 10 clients with 10 requests each -> passes.
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 10; ++i) {
      ds.add(make(c * 100.0 + i, "client" + std::to_string(c), "u1"));
    }
  }
  // Object u2: only 3 clients -> dropped.
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 12; ++i) {
      ds.add(make(c * 100.0 + i, "client" + std::to_string(c), "u2"));
    }
  }
  ds.sort_by_time();
  const auto flows = extract_object_flows(ds, FlowFilter{});
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].url, "u1");
  EXPECT_EQ(flows[0].total_requests, 100u);
  EXPECT_EQ(flows[0].clients.size(), 10u);
}

TEST(ExtractObjectFlows, ShortClientSubflowsCountedButNotAnalyzed) {
  Dataset ds;
  // 10 clients with 10 requests + 5 clients with 2 requests.
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 10; ++i) {
      ds.add(make(i, "big" + std::to_string(c), "u1"));
    }
  }
  for (int c = 0; c < 5; ++c) {
    ds.add(make(1.0, "small" + std::to_string(c), "u1"));
    ds.add(make(2.0, "small" + std::to_string(c), "u1"));
  }
  const auto flows = extract_object_flows(ds, FlowFilter{});
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].total_requests, 110u);  // includes the short subflows
  EXPECT_EQ(flows[0].clients.size(), 10u);   // analyzable ones only
}

TEST(ExtractObjectFlows, ComputesShareStatistics) {
  Dataset ds;
  FlowFilter permissive{1, 1};
  for (int i = 0; i < 4; ++i) {
    ds.add(make(i, "c", "u1", http::Method::kGet,
                i < 3 ? CacheStatus::kNotCacheable : CacheStatus::kHit));
  }
  ds.add(make(10.0, "c", "u1", http::Method::kPost,
              CacheStatus::kNotCacheable));
  const auto flows = extract_object_flows(ds, permissive);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0].uncacheable_share, 0.8);
  EXPECT_DOUBLE_EQ(flows[0].upload_share, 0.2);
}

TEST(ExtractObjectFlows, TimesAscendingPerFlowAndClient) {
  Dataset ds;
  FlowFilter permissive{2, 1};
  ds.add(make(5.0, "c", "u1"));
  ds.add(make(1.0, "c", "u1"));
  ds.add(make(3.0, "c", "u1"));
  const auto flows = extract_object_flows(ds, permissive);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(std::is_sorted(flows[0].times.begin(), flows[0].times.end()));
  ASSERT_EQ(flows[0].clients.size(), 1u);
  EXPECT_TRUE(std::is_sorted(flows[0].clients[0].times.begin(),
                             flows[0].clients[0].times.end()));
}

TEST(ExtractClientFlows, OrdersByTimeAndFiltersShortFlows) {
  Dataset ds;
  ds.add(make(3.0, "a", "u3"));
  ds.add(make(1.0, "a", "u1"));
  ds.add(make(2.0, "a", "u2"));
  ds.add(make(1.0, "b", "u1"));  // single request -> dropped at min 2
  const auto flows = extract_client_flows(ds, 2);
  ASSERT_EQ(flows.size(), 1u);
  const auto& records = ds.records();
  ASSERT_EQ(flows[0].record_indices.size(), 3u);
  EXPECT_EQ(records[flows[0].record_indices[0]].url, "u1");
  EXPECT_EQ(records[flows[0].record_indices[1]].url, "u2");
  EXPECT_EQ(records[flows[0].record_indices[2]].url, "u3");
}

TEST(ExtractClientFlows, DeterministicOrderAcrossRuns) {
  Dataset ds;
  ds.add(make(1.0, "z", "u1"));
  ds.add(make(1.0, "z", "u2"));
  ds.add(make(1.0, "a", "u1"));
  ds.add(make(1.0, "a", "u2"));
  const auto flows1 = extract_client_flows(ds, 2);
  const auto flows2 = extract_client_flows(ds, 2);
  ASSERT_EQ(flows1.size(), 2u);
  EXPECT_EQ(flows1[0].client, flows2[0].client);
  EXPECT_LT(flows1[0].client, flows1[1].client);  // sorted by client key
}

}  // namespace
}  // namespace jsoncdn::logs
