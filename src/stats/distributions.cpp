#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jsoncdn::stats {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated float error
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf: rank");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

BodySizeSampler::BodySizeSampler(const Params& params) : params_(params) {
  if (params.log_stddev < 0.0)
    throw std::invalid_argument("BodySizeSampler: log_stddev < 0");
  if (params.tail_prob < 0.0 || params.tail_prob > 1.0)
    throw std::invalid_argument("BodySizeSampler: tail_prob outside [0,1]");
  if (params.tail_alpha <= 0.0)
    throw std::invalid_argument("BodySizeSampler: tail_alpha <= 0");
  if (params.min_bytes > params.max_bytes)
    throw std::invalid_argument("BodySizeSampler: min_bytes > max_bytes");
}

std::uint64_t BodySizeSampler::sample(Rng& rng) const {
  double bytes;
  if (rng.bernoulli(params_.tail_prob)) {
    // Inverse-CDF Pareto draw: xm * (1-u)^(-1/alpha).
    const double u = rng.uniform();
    bytes = params_.tail_xm * std::pow(1.0 - u, -1.0 / params_.tail_alpha);
  } else {
    bytes = std::exp(rng.normal(params_.log_mean, params_.log_stddev));
  }
  bytes = std::clamp(bytes, static_cast<double>(params_.min_bytes),
                     static_cast<double>(params_.max_bytes));
  return static_cast<std::uint64_t>(std::llround(bytes));
}

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  if (rate <= 0.0) throw std::invalid_argument("PoissonProcess: rate <= 0");
}

double PoissonProcess::next_after(double now, Rng& rng) const {
  return now + rng.exponential(rate_);
}

std::vector<double> PoissonProcess::arrivals(double t_begin, double t_end,
                                             Rng& rng) const {
  if (t_begin > t_end)
    throw std::invalid_argument("PoissonProcess::arrivals: t_begin > t_end");
  std::vector<double> out;
  for (double t = next_after(t_begin, rng); t < t_end;
       t = next_after(t, rng)) {
    out.push_back(t);
  }
  return out;
}

std::size_t weighted_choice(const std::vector<double>& weights, Rng& rng) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_choice: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("weighted_choice: no positive weight");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // float round-off: fall back to last entry
}

}  // namespace jsoncdn::stats
