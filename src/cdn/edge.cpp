#include "cdn/edge.h"

namespace jsoncdn::cdn {

EdgeServer::EdgeServer(std::uint32_t id, const Origin& origin,
                       const logs::Anonymizer& anonymizer,
                       const EdgeParams& params)
    : id_(id),
      origin_(origin),
      anonymizer_(anonymizer),
      params_(params),
      cache_(params.cache_capacity_bytes) {}

logs::LogRecord EdgeServer::handle(const workload::RequestEvent& event,
                                   PrefetchPolicy* policy) {
  const double now = event.time;

  logs::LogRecord record;
  record.timestamp = now;
  record.client_id = anonymizer_.pseudonym(event.client_address);
  record.user_agent = event.user_agent;
  record.method = event.method;
  record.url = event.url;
  record.request_bytes = event.request_bytes;
  record.edge_id = id_;

  // Metadata first; the origin is only contacted on the paths that really
  // reach it (miss, revalidation, uncacheable tunnel, 404).
  const auto* object = origin_.describe(event.url);
  if (object == nullptr) {
    // Unknown object: tunneled to origin, answered 404.
    const auto origin_result = origin_.fetch(event.url);
    record.status = 404;
    record.cache_status = logs::CacheStatus::kNotCacheable;
    record.content_type = "text/plain";
    record.response_bytes = 0;
    metrics_.record(/*cacheable=*/false, /*hit=*/false, 0,
                    params_.client_rtt_seconds + origin_result.latency_seconds);
    return record;
  }

  record.domain = object->domain;
  record.content_type = object->content_type;
  record.status = 200;
  record.response_bytes = object->body_bytes;

  const double transfer =
      static_cast<double>(object->body_bytes) /
      params_.edge_bandwidth_bytes_per_s;
  const bool upload = http::is_upload(event.method);
  const bool cacheable = object->cacheable && !upload;

  // A fresh pushed copy in the client's buffer answers the request locally:
  // no edge round trip at all. Logged as a HIT — the bytes were served from
  // CDN-controlled storage.
  if (params_.enable_push && cacheable && !upload) {
    const auto push_key = record.client_key() + '\x1f' + event.url;
    if (const auto it = pushed_.find(push_key); it != pushed_.end()) {
      const bool fresh = it->second > now;
      pushed_.erase(it);
      if (fresh) {
        record.cache_status = logs::CacheStatus::kHit;
        metrics_.record(cacheable, /*hit=*/true, object->body_bytes,
                        /*latency=*/0.001);
        metrics_.mark_push_used();
        maybe_prefetch(record, policy, now);
        return record;
      }
    }
  }

  double latency = params_.client_rtt_seconds + transfer;
  bool hit = false;
  if (!cacheable) {
    // Tunneled to customer infrastructure, exactly as the paper describes
    // for the >55% uncacheable JSON share.
    const auto origin_result = origin_.fetch(event.url);
    record.cache_status = logs::CacheStatus::kNotCacheable;
    latency += origin_result.latency_seconds;
  } else if (const bool stale_available =
                 params_.enable_revalidation &&
                 cache_.peek_stale(event.url, now).has_value();
             cache_.lookup(event.url, now).has_value()) {
    // Note peek_stale runs before lookup: lookup erases expired entries.
    hit = true;
    record.cache_status = logs::CacheStatus::kHit;
    if (const auto it = pending_prefetches_.find(event.url);
        it != pending_prefetches_.end()) {
      metrics_.mark_prefetch_useful();
      pending_prefetches_.erase(it);
    }
  } else if (stale_available) {
    // Stale copy on disk: a 304 revalidation refreshes it without
    // re-transferring the body.
    const auto origin_result = origin_.revalidate(event.url);
    hit = true;
    record.cache_status = logs::CacheStatus::kRefreshHit;
    latency += origin_result.latency_seconds;
    cache_.insert(event.url, object->body_bytes, object->ttl_seconds, now);
    metrics_.mark_refresh_hit();
  } else {
    const auto origin_result = origin_.fetch(event.url);
    record.cache_status = logs::CacheStatus::kMiss;
    latency += origin_result.latency_seconds;
    cache_.insert(event.url, object->body_bytes, object->ttl_seconds, now);
    pending_prefetches_.erase(event.url);
  }

  metrics_.record(cacheable, hit, object->body_bytes, latency);
  maybe_prefetch(record, policy, now);
  return record;
}

void EdgeServer::maybe_prefetch(const logs::LogRecord& served,
                                PrefetchPolicy* policy, double now) {
  if (policy == nullptr) return;
  auto candidates = policy->candidates(served);
  std::size_t issued = 0;
  std::size_t pushed = 0;
  for (const auto& url : candidates) {
    if (issued >= params_.max_prefetches_per_request) break;
    const workload::ObjectSpec* object = nullptr;
    if (!cache_.contains(url, now)) {
      const auto result = origin_.fetch(url);
      if (result.object == nullptr || !result.object->cacheable) continue;
      object = result.object;
      cache_.insert(url, object->body_bytes, object->ttl_seconds, now);
      pending_prefetches_.insert(url);
      metrics_.record_prefetch(object->body_bytes);
      ++issued;
    }
    // Push the speculative response to this client as well: the copy rides
    // the open connection and is valid for a short window.
    if (params_.enable_push && pushed < params_.max_pushes_per_request) {
      const auto bytes =
          object != nullptr ? object->body_bytes : cache_.lookup(url, now)
                                  .value_or(0);
      if (bytes > 0) {
        pushed_[served.client_key() + '\x1f' + url] =
            now + params_.push_validity_seconds;
        metrics_.record_push(bytes);
        ++pushed;
      }
    }
  }
  // Bound push-table memory: drop expired entries opportunistically once it
  // grows large.
  if (pushed_.size() > 200'000) {
    std::erase_if(pushed_, [now](const auto& kv) { return kv.second <= now; });
  }
}

}  // namespace jsoncdn::cdn
