file(REMOVE_RECURSE
  "CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o"
  "CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o.d"
  "iot_telemetry"
  "iot_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
