#include "cdn/network.h"

#include <gtest/gtest.h>

namespace jsoncdn::cdn {
namespace {

workload::ObjectCatalog one_object_catalog() {
  workload::ObjectCatalog catalog;
  workload::ObjectSpec obj;
  obj.url = "https://d.example/x";
  obj.domain = "d.example";
  obj.content_type = "application/json";
  obj.cacheable = true;
  obj.ttl_seconds = 600.0;
  obj.body_bytes = 100;
  catalog.add(obj);
  return catalog;
}

workload::RequestEvent request(const std::string& addr, double t) {
  workload::RequestEvent ev;
  ev.time = t;
  ev.client_address = addr;
  ev.user_agent = "ua";
  ev.url = "https://d.example/x";
  return ev;
}

TEST(CdnNetwork, ClientMappingIsSticky) {
  const auto catalog = one_object_catalog();
  CdnNetwork network(catalog, {});
  const auto e = network.edge_for("10.0.0.1");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(network.edge_for("10.0.0.1"), e);
  EXPECT_LT(e, network.edges().size());
}

TEST(CdnNetwork, PerClientCachesAreIndependent) {
  const auto catalog = one_object_catalog();
  NetworkParams params;
  params.edge_count = 3;
  CdnNetwork network(catalog, params);
  // Find two clients on different edges.
  std::string a = "10.0.0.1";
  std::string b;
  for (int i = 2; i < 100; ++i) {
    b = "10.0.0." + std::to_string(i);
    if (network.edge_for(b) != network.edge_for(a)) break;
  }
  const auto ds = network.run({request(a, 0.0), request(b, 1.0)});
  // Both are first-touch on their own edge: two misses, no hit.
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(ds[1].cache_status, logs::CacheStatus::kMiss);
}

TEST(CdnNetwork, SameEdgeSharesCacheAcrossClients) {
  const auto catalog = one_object_catalog();
  NetworkParams params;
  params.edge_count = 1;  // force shared edge
  CdnNetwork network(catalog, params);
  const auto ds = network.run({request("a", 0.0), request("b", 1.0)});
  EXPECT_EQ(ds[0].cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(ds[1].cache_status, logs::CacheStatus::kHit);
}

TEST(CdnNetwork, DatasetSortedByTime) {
  const auto catalog = one_object_catalog();
  CdnNetwork network(catalog, {});
  const auto ds =
      network.run({request("a", 5.0), request("b", 1.0), request("c", 3.0)});
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_LE(ds[0].timestamp, ds[1].timestamp);
  EXPECT_LE(ds[1].timestamp, ds[2].timestamp);
}

TEST(CdnNetwork, TotalMetricsAggregateAcrossEdges) {
  const auto catalog = one_object_catalog();
  NetworkParams params;
  params.edge_count = 4;
  CdnNetwork network(catalog, params);
  std::vector<workload::RequestEvent> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(request("10.9.8." + std::to_string(i), i));
  }
  (void)network.run(events);
  const auto total = network.total_metrics();
  EXPECT_EQ(total.requests(), 50u);
  EXPECT_EQ(total.hits() + total.misses(), 50u);
  EXPECT_EQ(total.latencies().size(), 50u);
}

TEST(CdnNetwork, RejectsZeroEdges) {
  const auto catalog = one_object_catalog();
  NetworkParams params;
  params.edge_count = 0;
  EXPECT_THROW(CdnNetwork(catalog, params), std::invalid_argument);
}

TEST(DeliveryMetrics, RatioAccessors) {
  DeliveryMetrics m;
  EXPECT_DOUBLE_EQ(m.cacheable_hit_ratio(), 0.0);
  m.record(true, true, 10, 0.01);
  m.record(true, false, 10, 0.10);
  m.record(false, false, 10, 0.10);
  EXPECT_DOUBLE_EQ(m.cacheable_hit_ratio(), 0.5);
  EXPECT_NEAR(m.overall_hit_ratio(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.origin_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.bytes_served(), 30u);
}

TEST(DeliveryMetrics, MergeSumsEverything) {
  DeliveryMetrics a;
  DeliveryMetrics b;
  a.record(true, true, 5, 0.01);
  b.record(false, false, 7, 0.02);
  b.record_prefetch(100);
  b.mark_prefetch_useful();
  a.merge(b);
  EXPECT_EQ(a.requests(), 2u);
  EXPECT_EQ(a.bytes_served(), 12u);
  EXPECT_EQ(a.prefetches_issued(), 1u);
  EXPECT_EQ(a.useful_prefetches(), 1u);
  EXPECT_EQ(a.latencies().size(), 2u);
}

TEST(DeliveryMetrics, PrefetchWaste) {
  DeliveryMetrics m;
  EXPECT_DOUBLE_EQ(m.prefetch_waste(), 0.0);
  m.record_prefetch(10);
  m.record_prefetch(10);
  m.mark_prefetch_useful();
  EXPECT_DOUBLE_EQ(m.prefetch_waste(), 0.5);
}

}  // namespace
}  // namespace jsoncdn::cdn
