// Metamorphic transformations over log datasets, and the label extractors
// that make their relations checkable.
//
// Each transform encodes a relation the analyses must satisfy without any
// reference output: shifting every timestamp must not change periodicity
// labels (the detector bins relative to flow start); interleaving a flow-
// disjoint copy must leave the original flows' labels untouched (per-flow
// randomness is forked from stable url/client hashes, not flow indices);
// benign noise on fresh clients and URLs must do the same; renaming URLs
// with an order-preserving infix must leave ngram accuracy bit-identical
// (ranking ties break lexicographically, and an order-preserving rename
// cannot reorder them). Violations are real bugs, not tolerance issues.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "core/periodicity.h"
#include "logs/dataset.h"

namespace jsoncdn::oracle {

// Every record's timestamp shifted by `delta_seconds` (record order kept).
// Note each shifted timestamp is individually rounded to the nearest double,
// so inter-arrival gaps move by up to one ulp of the shifted values — labels
// must survive that exactly, periods may wiggle at the 1e-9 level.
[[nodiscard]] logs::Dataset shift_time(const logs::Dataset& ds,
                                       double delta_seconds);

// Every record's timestamp multiplied by `factor` (> 0). A detector must
// scale with its input: every detected period scales by the same factor
// (compare against scale_periods of the original labels, with a small
// relative tolerance — binning quantizes periods to bin multiples, and the
// bin width itself rescales).
[[nodiscard]] logs::Dataset scale_time(const logs::Dataset& ds,
                                       double factor);

// Concatenates two datasets and restores the ascending-time invariant.
[[nodiscard]] logs::Dataset merge_datasets(const logs::Dataset& a,
                                           const logs::Dataset& b);

// A copy whose client ids, URLs, and domains all carry `tag`, making every
// flow of the copy disjoint from every flow of the original. Merging it back
// in doubles the traffic without touching any original flow.
[[nodiscard]] logs::Dataset rename_disjoint(const logs::Dataset& ds,
                                            const std::string& tag);

// `count` extra requests from fresh single-request clients against fresh
// URLs, timestamps drawn deterministically from `seed` across the dataset's
// time range. No original flow gains or loses a request.
[[nodiscard]] logs::Dataset inject_benign_noise(const logs::Dataset& ds,
                                                std::size_t count,
                                                std::uint64_t seed);

// Inserts `infix` into every URL directly after its "https://" scheme (and
// prefixes the domain field to match). Because the insertion point and text
// are identical for all URLs, lexicographic order among URLs — and among
// their cluster keys — is preserved, which is exactly what the ngram
// model's tie-breaking depends on.
[[nodiscard]] logs::Dataset rename_urls_order_preserving(
    const logs::Dataset& ds, const std::string& infix);

// Flattens a periodicity report to (url, client_key) -> (periodic, period)
// for exact comparison across metamorphic runs. `url_strip_infix`: when
// comparing against a renamed run, the infix is removed from URLs so keys
// line up with the original's.
using DetectionLabels =
    std::map<std::pair<std::string, std::string>, std::pair<bool, double>>;
[[nodiscard]] DetectionLabels detection_labels(
    const core::PeriodicityReport& report,
    const std::string& url_strip_infix = {});

// The expected labels after scale_time(ds, factor): same flows, same
// periodic flags, periods multiplied by `factor`.
[[nodiscard]] DetectionLabels scale_periods(const DetectionLabels& labels,
                                            double factor);

// detection_labels(report) restricted to keys present in `reference` — how
// interleaving/noise runs are compared: added traffic may create new flows,
// but labels of the original flows must be identical.
[[nodiscard]] DetectionLabels restrict_labels(const DetectionLabels& labels,
                                              const DetectionLabels& reference);

// True when both label sets cover the same flows with identical periodic
// flags and periods equal within `period_rel_tol` relative tolerance
// (0 = bit-exact). The tolerant form is for the time-shift relation, where
// per-timestamp rounding legitimately moves periods at the ulp level while
// a flipped label is still a bug.
[[nodiscard]] bool labels_equivalent(const DetectionLabels& a,
                                     const DetectionLabels& b,
                                     double period_rel_tol = 0.0);

}  // namespace jsoncdn::oracle
