// Runtime dispatch between the scalar and SIMD builds of the hot analysis
// kernels (stats/kernels.h). The same kernel bodies are compiled twice —
// once with auto-vectorization disabled, once with it forced on plus an
// AVX2 target when the toolchain supports it — and every call goes through
// a cached runtime switch:
//
//   - env JSONCDN_DISABLE_SIMD=1 (or any non-empty value other than "0")
//     pins the scalar build for the whole process;
//   - on x86-64 the SIMD build is only taken when the CPU reports AVX2;
//   - set_simd_enabled() lets benchmarks and tests flip the dispatch
//     in-process so one binary can measure/verify both paths.
//
// Both builds compile the identical arithmetic graph with FP contraction
// off, so float kernels — not just integer ones — produce bit-identical
// results under either dispatch. See DESIGN.md §14.
#pragma once

namespace jsoncdn::stats {

// True when a vectorized kernel build exists in this binary AND the CPU can
// run it. Constant for the process lifetime.
[[nodiscard]] bool simd_available() noexcept;

// True when kernel calls currently route to the SIMD build: available, not
// disabled by JSONCDN_DISABLE_SIMD, not overridden by set_simd_enabled().
[[nodiscard]] bool simd_enabled() noexcept;

// Overrides the dispatch for this process (clamped to simd_available()).
// Thread-safe but not synchronized with in-flight kernel calls; intended
// for benchmark/test setup, not for toggling mid-analysis.
void set_simd_enabled(bool on) noexcept;

// "avx2" when SIMD dispatch is active, "scalar" otherwise (for logs/bench).
[[nodiscard]] const char* simd_isa() noexcept;

}  // namespace jsoncdn::stats
