#include "http/method.h"

namespace jsoncdn::http {

std::optional<Method> parse_method(std::string_view token) {
  if (token == "GET") return Method::kGet;
  if (token == "POST") return Method::kPost;
  if (token == "PUT") return Method::kPut;
  if (token == "DELETE") return Method::kDelete;
  if (token == "HEAD") return Method::kHead;
  if (token == "OPTIONS") return Method::kOptions;
  if (token == "PATCH") return Method::kPatch;
  return std::nullopt;
}

std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kHead: return "HEAD";
    case Method::kOptions: return "OPTIONS";
    case Method::kPatch: return "PATCH";
  }
  return "GET";
}

}  // namespace jsoncdn::http
