#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

namespace jsoncdn::stats {
namespace {

TEST(Percentile, LinearInterpolationBetweenRanks) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 1.75);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  std::vector<double> empty;
  std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.1), std::invalid_argument);
}

TEST(Summarize, KnownSample) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
}

TEST(Summarize, EmptySampleIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 5);  // width 2
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowAreCounted) {
  Histogram h(0.0, 10.0, 5);
  h.add(-0.1);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 16.25);
}

TEST(Histogram, ModeBinFindsFullest) {
  Histogram h(0.0, 3.0, 3);
  h.add_n(0.5, 2);
  h.add_n(1.5, 5);
  h.add_n(2.5, 1);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, ModeBinRequiresInRangeData) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.mode_bin(), std::logic_error);
  h.add(5.0);  // only overflow
  EXPECT_THROW((void)h.mode_bin(), std::logic_error);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, CountThrowsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

TEST(EmpiricalCdf, StepFunctionValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInvertsAt) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
}

TEST(EmpiricalCdf, EmptySampleAtIsZero) {
  EmpiricalCdf cdf{std::vector<double>{}};
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_EQ(cdf.size(), 0u);
}

TEST(AsciiBarChart, RendersBarsProportionally) {
  const auto chart = ascii_bar_chart({{"a", 10.0}, {"b", 5.0}}, 10);
  // "a" gets the full width, "b" half of it.
  EXPECT_NE(chart.find("##########"), std::string::npos);
  EXPECT_NE(chart.find("#####"), std::string::npos);
  EXPECT_NE(chart.find("a"), std::string::npos);
  EXPECT_NE(chart.find("b"), std::string::npos);
}

TEST(AsciiBarChart, AllZeroValuesRenderNoBars) {
  const auto chart = ascii_bar_chart({{"x", 0.0}}, 10);
  EXPECT_EQ(chart.find('#'), std::string::npos);
}

}  // namespace
}  // namespace jsoncdn::stats
