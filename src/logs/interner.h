// Arena-backed string interning: the dictionary half of the columnar log
// store. Every distinct string is stored exactly once in a bump-allocated
// arena and identified by a dense, stable u32 symbol. Lookups are
// string_view-keyed (no allocation); views returned by view() point into the
// arena and stay valid for the interner's lifetime — arena blocks are never
// moved or freed, so growth invalidates nothing.
//
// Symbols are assigned in first-intern order, so an interner built by a
// single-threaded scan over a record stream is a pure function of the
// distinct-string order of that stream. The interner itself is not
// thread-safe; parallel consumers share a *built* (const) interner freely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jsoncdn::logs {

class StringInterner {
 public:
  using Symbol = std::uint32_t;
  // Returned by find() for strings never interned. Never a valid symbol:
  // intern() throws before the table could reach 2^32 - 1 entries.
  static constexpr Symbol kNoSymbol = 0xffffffffu;

  StringInterner() = default;

  // Not copyable (the map's keys point into the arena); movable.
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  // Returns the existing symbol for `s`, or copies `s` into the arena and
  // assigns the next dense symbol. O(1) amortized; allocates only for
  // strings never seen before.
  Symbol intern(std::string_view s);

  // Symbol of `s` if it was ever interned, else kNoSymbol. Never allocates.
  [[nodiscard]] Symbol find(std::string_view s) const noexcept {
    const auto it = map_.find(s);
    return it == map_.end() ? kNoSymbol : it->second;
  }

  // The interned string for a symbol. Valid for the interner's lifetime.
  [[nodiscard]] std::string_view view(Symbol id) const noexcept {
    return views_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }
  [[nodiscard]] bool empty() const noexcept { return views_.empty(); }

  void reserve(std::size_t symbols);

  // Approximate heap footprint: arena blocks + symbol table + view index.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  static constexpr std::size_t kBlockBytes = 1 << 16;  // 64 KiB arena blocks

  // Copies `s` into the arena, returning a stable view.
  std::string_view arena_store(std::string_view s);

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::size_t block_used_ = 0;      // bytes used in blocks_.back()
  std::size_t block_capacity_ = 0;  // capacity of blocks_.back()
  std::size_t arena_bytes_ = 0;     // total capacity across blocks

  std::vector<std::string_view> views_;  // symbol -> arena view
  // Keys are views into the arena (stable); string_view keying makes every
  // lookup heterogeneous by construction.
  std::unordered_map<std::string_view, Symbol> map_;
};

}  // namespace jsoncdn::logs
