file(REMOVE_RECURSE
  "CMakeFiles/news_app_prefetch.dir/news_app_prefetch.cpp.o"
  "CMakeFiles/news_app_prefetch.dir/news_app_prefetch.cpp.o.d"
  "news_app_prefetch"
  "news_app_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_app_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
