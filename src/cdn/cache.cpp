#include "cdn/cache.h"

namespace jsoncdn::cdn {

LruCache::LruCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

std::optional<std::uint64_t> LruCache::lookup(std::string_view key,
                                              double now) {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->expires_at <= now) {
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh recency: splice the entry to the front.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->bytes;
}

void LruCache::insert(std::string_view key, std::uint64_t bytes, double ttl,
                      double now) {
  if (bytes > capacity_ || ttl <= 0.0) return;  // not admissible
  const std::string k(key);
  if (const auto it = entries_.find(k); it != entries_.end()) {
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  while (used_ + bytes > capacity_ && !lru_.empty()) evict_lru();
  lru_.push_front(Entry{k, bytes, now + ttl});
  entries_[k] = lru_.begin();
  used_ += bytes;
  ++stats_.insertions;
}

std::optional<std::uint64_t> LruCache::peek_stale(std::string_view key,
                                                  double now) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end() || it->second->expires_at > now)
    return std::nullopt;
  return it->second->bytes;
}

std::optional<LruCache::StaleEntry> LruCache::peek_stale_entry(
    std::string_view key, double now) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end() || it->second->expires_at > now)
    return std::nullopt;
  return StaleEntry{it->second->bytes, it->second->expires_at};
}

void LruCache::restore(std::string_view key, std::uint64_t bytes,
                       double expires_at) {
  if (bytes > capacity_) return;
  const std::string k(key);
  if (const auto it = entries_.find(k); it != entries_.end()) {
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  while (used_ + bytes > capacity_ && !lru_.empty()) evict_lru();
  lru_.push_front(Entry{k, bytes, expires_at});
  entries_[k] = lru_.begin();
  used_ += bytes;
  ++stats_.insertions;
}

bool LruCache::contains(std::string_view key, double now) const {
  const auto it = entries_.find(std::string(key));
  return it != entries_.end() && it->second->expires_at > now;
}

void LruCache::erase(std::string_view key) {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return;
  used_ -= it->second->bytes;
  lru_.erase(it->second);
  entries_.erase(it);
}

void LruCache::clear() {
  lru_.clear();
  entries_.clear();
  used_ = 0;
}

void LruCache::evict_lru() {
  const auto& victim = lru_.back();
  used_ -= victim.bytes;
  entries_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

}  // namespace jsoncdn::cdn
