file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_logs.dir/anonymizer.cpp.o"
  "CMakeFiles/jsoncdn_logs.dir/anonymizer.cpp.o.d"
  "CMakeFiles/jsoncdn_logs.dir/csv.cpp.o"
  "CMakeFiles/jsoncdn_logs.dir/csv.cpp.o.d"
  "CMakeFiles/jsoncdn_logs.dir/dataset.cpp.o"
  "CMakeFiles/jsoncdn_logs.dir/dataset.cpp.o.d"
  "CMakeFiles/jsoncdn_logs.dir/record.cpp.o"
  "CMakeFiles/jsoncdn_logs.dir/record.cpp.o.d"
  "libjsoncdn_logs.a"
  "libjsoncdn_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
