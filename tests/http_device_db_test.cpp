#include "http/device_db.h"

#include <gtest/gtest.h>

#include "http/method.h"

namespace jsoncdn::http {
namespace {

struct DeviceCase {
  const char* ua;
  DeviceType device;
  AgentKind agent;
};

class ClassifyDeviceTest : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(ClassifyDeviceTest, MatchesExpectedClassification) {
  const auto c = classify_device(GetParam().ua);
  EXPECT_EQ(c.device, GetParam().device) << GetParam().ua;
  EXPECT_EQ(c.agent, GetParam().agent) << GetParam().ua;
}

INSTANTIATE_TEST_SUITE_P(
    RealWorldAgents, ClassifyDeviceTest,
    ::testing::Values(
        // Mobile browsers.
        DeviceCase{"Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) "
                   "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1.2 "
                   "Mobile/15E148 Safari/604.1",
                   DeviceType::kMobile, AgentKind::kBrowser},
        DeviceCase{"Mozilla/5.0 (Linux; Android 9; SM-G960F) "
                   "AppleWebKit/537.36 (KHTML, like Gecko) "
                   "Chrome/76.0.3809.132 Mobile Safari/537.36",
                   DeviceType::kMobile, AgentKind::kBrowser},
        // Desktop browsers.
        DeviceCase{"Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
                   "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/76.0.3809.100 "
                   "Safari/537.36",
                   DeviceType::kDesktop, AgentKind::kBrowser},
        DeviceCase{"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_14_6) "
                   "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1.2 "
                   "Safari/605.1.15",
                   DeviceType::kDesktop, AgentKind::kBrowser},
        DeviceCase{"Mozilla/5.0 (X11; Linux x86_64; rv:68.0) Gecko/20100101 "
                   "Firefox/68.0",
                   DeviceType::kDesktop, AgentKind::kBrowser},
        // Native mobile apps.
        DeviceCase{"NewsReader/5.2.1 (iPhone; iOS 12.4.1; Scale/3.00)",
                   DeviceType::kMobile, AgentKind::kNativeApp},
        DeviceCase{"Feedly/61.0 CFNetwork/978.0.7 Darwin/18.7.0",
                   DeviceType::kMobile, AgentKind::kNativeApp},
        DeviceCase{"CFNetwork/978.0.7 Darwin/18.7.0", DeviceType::kMobile,
                   AgentKind::kLibrary},
        // Embedded devices.
        DeviceCase{"Mozilla/5.0 (PlayStation 4 6.72) AppleWebKit/605.1.15 "
                   "(KHTML, like Gecko)",
                   DeviceType::kEmbedded, AgentKind::kNativeApp},
        DeviceCase{"FitnessTracker/6.0.1 (AppleWatch4,4; watchOS 5.3)",
                   DeviceType::kEmbedded, AgentKind::kNativeApp},
        DeviceCase{"StreamPlayer/4.1 (SMART-TV; Tizen 5.0) AppleWebKit/537.36",
                   DeviceType::kEmbedded, AgentKind::kNativeApp},
        DeviceCase{"Roku/DVP-9.10 (519.10E04111A)", DeviceType::kEmbedded,
                   AgentKind::kNativeApp},
        // Libraries / scripts.
        DeviceCase{"curl/7.58.0", DeviceType::kUnknown, AgentKind::kLibrary},
        DeviceCase{"python-requests/2.22.0", DeviceType::kUnknown,
                   AgentKind::kLibrary},
        DeviceCase{"Go-http-client/1.1", DeviceType::kUnknown,
                   AgentKind::kLibrary},
        DeviceCase{"okhttp/3.12.1", DeviceType::kMobile, AgentKind::kLibrary},
        DeviceCase{"Dalvik/2.1.0 (Linux; U; Android 8.1.0; Pixel 2)",
                   DeviceType::kMobile, AgentKind::kLibrary},
        // Unknown.
        DeviceCase{"", DeviceType::kUnknown, AgentKind::kUnknown},
        DeviceCase{"prod-fetcher-internal", DeviceType::kUnknown,
                   AgentKind::kUnknown}));

TEST(ClassifyDevice, EmbeddedBeatsDesktopTokens) {
  // Console UAs often carry Mozilla/WebKit tokens; embedded must win.
  const auto c = classify_device(
      "Mozilla/5.0 (PlayStation 4 6.72) AppleWebKit/605.1.15 (KHTML, like "
      "Gecko)");
  EXPECT_EQ(c.device, DeviceType::kEmbedded);
  // The paper observes no browser traffic from embedded devices.
  EXPECT_FALSE(c.is_browser());
}

TEST(ClassifyDevice, MissingUaIsUnknown) {
  const auto c = classify_device("");
  EXPECT_EQ(c.device, DeviceType::kUnknown);
  EXPECT_EQ(c.agent, AgentKind::kUnknown);
}

TEST(ClassifyDevice, OsExtraction) {
  EXPECT_EQ(classify_device("NewsReader/5.2.1 (iPhone; iOS 12)").os, "ios");
  EXPECT_EQ(classify_device(
                "Mozilla/5.0 (Linux; Android 9) Chrome/76.0 Mobile Safari")
                .os,
            "android");
  EXPECT_EQ(classify_device("Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
                            "AppleWebKit/537.36 Chrome/76.0 Safari/537.36")
                .os,
            "windows");
}

TEST(ToStringNames, AreStable) {
  EXPECT_EQ(to_string(DeviceType::kMobile), "mobile");
  EXPECT_EQ(to_string(DeviceType::kEmbedded), "embedded");
  EXPECT_EQ(to_string(AgentKind::kBrowser), "browser");
  EXPECT_EQ(to_string(AgentKind::kNativeApp), "native-app");
}

TEST(MethodHelpers, UploadDownloadSplit) {
  EXPECT_TRUE(is_download(Method::kGet));
  EXPECT_TRUE(is_download(Method::kHead));
  EXPECT_TRUE(is_upload(Method::kPost));
  EXPECT_TRUE(is_upload(Method::kPut));
  EXPECT_TRUE(is_upload(Method::kPatch));
  EXPECT_FALSE(is_upload(Method::kGet));
  EXPECT_FALSE(is_download(Method::kDelete));
}

TEST(MethodParse, RoundTripsAllMethods) {
  for (const auto m : {Method::kGet, Method::kPost, Method::kPut,
                       Method::kDelete, Method::kHead, Method::kOptions,
                       Method::kPatch}) {
    const auto parsed = parse_method(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
}

TEST(MethodParse, CaseSensitivePerRfc) {
  EXPECT_FALSE(parse_method("get").has_value());
  EXPECT_FALSE(parse_method("Get").has_value());
  EXPECT_FALSE(parse_method("FETCH").has_value());
}

}  // namespace
}  // namespace jsoncdn::http
