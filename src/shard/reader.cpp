#include "shard/reader.h"

#include <algorithm>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define JSONCDN_SHARD_HAVE_MADVISE 1
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "logs/jlog.h"
#include "shard/chunk.h"

namespace jsoncdn::shard {

namespace {

// Whether the sorted wanted-symbol set intersects the chunk's inclusive
// [min_sym, max_sym] range — one lower_bound, no decode.
bool range_intersects(const std::vector<std::uint32_t>& wanted,
                      const SymbolRange& range) noexcept {
  const auto it = std::lower_bound(wanted.begin(), wanted.end(), range.min_sym);
  return it != wanted.end() && *it <= range.max_sym;
}

bool contains(const std::vector<std::uint32_t>& sorted,
              std::uint32_t sym) noexcept {
  return std::binary_search(sorted.begin(), sorted.end(), sym);
}

}  // namespace

bool ScanPredicate::selects(const ChunkMeta& meta) const noexcept {
  if (meta.row_count == 0) return false;
  if (meta.max_ts < min_time || meta.min_ts > max_time) return false;
  if (!url_symbols.empty() &&
      !range_intersects(url_symbols, meta.symbols[kSymUrl])) {
    return false;
  }
  if (!ctype_symbols.empty() &&
      !range_intersects(ctype_symbols, meta.symbols[kSymContentType])) {
    return false;
  }
  return true;
}

bool ScanPredicate::selects_row(const logs::LogTable& chunk,
                                std::uint32_t row) const noexcept {
  const double t = chunk.timestamp(row);
  if (t < min_time || t > max_time) return false;
  if (!url_symbols.empty() && !contains(url_symbols, chunk.url_sym(row))) {
    return false;
  }
  if (!ctype_symbols.empty() &&
      !contains(ctype_symbols, chunk.content_type_sym(row))) {
    return false;
  }
  return true;
}

ShardReader::ShardReader(const std::string& path,
                         std::uint64_t max_memory_bytes)
    : path_(path) {
  try {
    file_ = std::make_unique<logs::MappedFile>(path_);
  } catch (const std::exception&) {
    throw std::runtime_error("cannot open .jlog file: " + path_);
  }
  const std::string_view bytes = file_->view();
  const auto magic = logs::jlog_v2_magic();
  if (bytes.size() < magic.size() + kTrailerBytes) {
    logs::jlog_corrupt(path_, "file shorter than v2 magic + trailer");
  }
  if (bytes.substr(0, magic.size()) != magic) {
    logs::jlog_corrupt(path_, "bad magic (not a .jlog v2 file)");
  }
  if (bytes.substr(bytes.size() - kJlogV2TailMagic.size()) !=
      kJlogV2TailMagic) {
    logs::jlog_corrupt(path_, "bad tail magic (truncated v2 file)");
  }

  logs::BinaryReader trailer(bytes.substr(bytes.size() - kTrailerBytes),
                             path_);
  footer_offset_ = trailer.pod<std::uint64_t>();
  const auto footer_checksum = trailer.pod<std::uint64_t>();
  if (footer_offset_ < magic.size() ||
      footer_offset_ > bytes.size() - kTrailerBytes) {
    logs::jlog_corrupt(path_, "footer offset out of range");
  }
  const std::string_view footer_bytes = bytes.substr(
      footer_offset_, bytes.size() - kTrailerBytes - footer_offset_);
  if (payload_checksum(footer_bytes) != footer_checksum) {
    logs::jlog_corrupt(path_, "footer checksum mismatch");
  }

  logs::BinaryReader footer(footer_bytes, path_);
  ChunkCodec::read_dictionaries(footer, scratch_, path_);
  chunk_target_rows_ = footer.pod<std::uint32_t>();
  const auto chunk_count = footer.pod<std::uint32_t>();
  directory_.reserve(chunk_count);
  // The directory size is bounds-checked up front so a huge forged count
  // fails fast instead of looping through pod() throws.
  footer.need(static_cast<std::size_t>(chunk_count) * kChunkMetaBytes,
              "truncated chunk directory");
  for (std::uint32_t c = 0; c < chunk_count; ++c) {
    directory_.push_back(read_chunk_meta(footer));
  }
  row_count_ = footer.pod<std::uint64_t>();
  if (!footer.exhausted()) {
    logs::jlog_corrupt(path_, "trailing bytes in footer");
  }
  if (chunk_count > 0 && chunk_target_rows_ == 0) {
    logs::jlog_corrupt(path_, "chunk target rows is zero");
  }

  // Chunk payloads must tile [magic, footer) exactly: no gaps (bytes no
  // checksum covers), no overlaps, in file order.
  std::uint64_t expected = magic.size();
  std::uint64_t rows = 0;
  for (const auto& meta : directory_) {
    if (meta.offset != expected) {
      logs::jlog_corrupt(path_, "chunk directory does not tile the file");
    }
    if (meta.payload_bytes > footer_offset_ - expected) {
      logs::jlog_corrupt(path_, "chunk payload exceeds file bounds");
    }
    expected += meta.payload_bytes;
    rows += meta.row_count;
  }
  if (expected != footer_offset_) {
    logs::jlog_corrupt(path_, "chunk payloads do not reach the footer");
  }
  if (rows != row_count_) {
    logs::jlog_corrupt(path_, "directory row sum does not match row count");
  }

  // Page-release cadence: default every 64 MiB of scanned payload; a tight
  // --max-memory budget shrinks the interval so the scan never carries more
  // than a fraction of the budget in scanned-past pages.
  if (file_->is_mapped()) {
    constexpr std::uint64_t kDefaultInterval = 64ull << 20;
    advise_interval_ = kDefaultInterval;
    if (max_memory_bytes > 0) {
      advise_interval_ = std::clamp<std::uint64_t>(max_memory_bytes / 8,
                                                   1ull << 20, kDefaultInterval);
    }
  }
  advise_mark_ = magic.size();
}

void ShardReader::release_scanned_pages(std::uint64_t scanned_up_to) {
#if JSONCDN_SHARD_HAVE_MADVISE
  if (advise_interval_ == 0 || scanned_up_to < advise_mark_ ||
      scanned_up_to - advise_mark_ < advise_interval_) {
    return;
  }
  const auto page =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(file_->data());
  // Round the release range to whole pages inside [advise_mark_,
  // scanned_up_to): never touch the page the next chunk starts in.
  const std::uintptr_t lo = (base + advise_mark_ + page - 1) / page * page;
  const std::uintptr_t hi = (base + scanned_up_to) / page * page;
  if (hi > lo) {
    // Advisory only — a failure just means pages stay resident longer.
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
  }
  advise_mark_ = scanned_up_to;
#else
  (void)scanned_up_to;
#endif
}

ScanStats ShardReader::scan(
    const ScanPredicate& predicate,
    const std::function<void(const logs::LogTable& chunk,
                             std::span<const std::uint32_t> selected)>& fn) {
  ScanStats stats;
  stats.chunks_total = chunk_count();
  const std::string_view bytes = file_->view();
  for (const auto& meta : directory_) {
    if (predicate.use_zone_maps && !predicate.selects(meta)) {
      ++stats.chunks_pruned;
      continue;
    }
    const std::string_view payload =
        bytes.substr(meta.offset, meta.payload_bytes);
    scratch_.clear_rows();
    ChunkCodec::decode(payload, meta, scratch_, path_);
    ++stats.chunks_scanned;
    stats.rows_scanned += meta.row_count;
    stats.bytes_decoded += meta.payload_bytes;

    selected_.clear();
    for (std::uint32_t row = 0; row < meta.row_count; ++row) {
      if (predicate.selects_row(scratch_, row)) selected_.push_back(row);
    }
    stats.rows_selected += selected_.size();
    fn(scratch_, selected_);
    release_scanned_pages(meta.offset + meta.payload_bytes);
  }
  return stats;
}

logs::LogTable ShardReader::read_all(logs::IngestReport* report) {
  if (row_count_ > 0xffffffffULL) {
    logs::jlog_corrupt(path_, "row count exceeds u32 range");
  }
  // A fresh table needs its own dictionaries (interners are not copyable):
  // re-parse them from the footer, then append every chunk.
  logs::LogTable table;
  const std::string_view bytes = file_->view();
  logs::BinaryReader footer(
      bytes.substr(footer_offset_,
                   bytes.size() - kTrailerBytes - footer_offset_),
      path_);
  ChunkCodec::read_dictionaries(footer, table, path_);
  table.reserve(static_cast<std::size_t>(row_count_));
  for (const auto& meta : directory_) {
    ChunkCodec::decode(bytes.substr(meta.offset, meta.payload_bytes), meta,
                       table, path_);
  }
  if (report != nullptr) {
    logs::IngestReport r;
    r.lines = table.size();
    r.records = table.size();
    r.header_seen = true;  // the magic is the binary format's header
    *report = std::move(r);
  }
  return table;
}

std::size_t ShardReader::resident_bytes() const noexcept {
  return scratch_.memory_bytes() + directory_.capacity() * sizeof(ChunkMeta) +
         selected_.capacity() * sizeof(std::uint32_t);
}

logs::LogTable load_table_auto(const std::string& path,
                               const logs::IngestOptions& options,
                               logs::IngestReport* report) {
  switch (logs::detect_log_format(path)) {
    case logs::LogFormat::kJlogV1:
      return logs::read_jlog(path, report);
    case logs::LogFormat::kJlogV2:
      return ShardReader(path).read_all(report);
    case logs::LogFormat::kText:
      break;
  }
  return logs::read_log_table(path, options, report);
}

}  // namespace jsoncdn::shard
