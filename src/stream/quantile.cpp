#include "stream/quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jsoncdn::stream {

QuantileSketch::QuantileSketch(double alpha, std::size_t max_buckets)
    : alpha_(alpha), max_buckets_(max_buckets) {
  if (!(alpha > 0.0 && alpha < 1.0))
    throw std::invalid_argument("QuantileSketch: alpha outside (0,1)");
  if (max_buckets < 16)
    throw std::invalid_argument("QuantileSketch: max_buckets < 16");
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::int32_t QuantileSketch::bucket_index(double value) const {
  return static_cast<std::int32_t>(
      std::ceil(std::log(value) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint (in the multiplicative sense) of (gamma^(i-1), gamma^i]: every
  // value in the bucket is within factor (1 +/- alpha) of it.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::add(double value, std::uint64_t count) {
  if (count == 0) return;
  total_ += count;
  if (value <= 0.0) {
    zero_count_ += count;
    return;
  }
  buckets_[bucket_index(value)] += count;
  collapse_if_needed();
}

void QuantileSketch::collapse_if_needed() {
  while (buckets_.size() > max_buckets_) {
    // Fold the lowest bucket into its neighbour above.
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
    collapsed_ = true;
  }
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::llround(q * static_cast<double>(total_ - 1)));
  if (rank < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, count] : buckets_) {
    cumulative += count;
    if (cumulative > rank) return bucket_value(index);
  }
  return buckets_.empty() ? 0.0 : bucket_value(buckets_.rbegin()->first);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_ || max_buckets_ != other.max_buckets_)
    throw std::invalid_argument("QuantileSketch::merge: config mismatch");
  zero_count_ += other.zero_count_;
  total_ += other.total_;
  collapsed_ = collapsed_ || other.collapsed_;
  for (const auto& [index, count] : other.buckets_)
    buckets_[index] += count;
  collapse_if_needed();
}

}  // namespace jsoncdn::stream
