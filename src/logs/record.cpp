#include "logs/record.h"

namespace jsoncdn::logs {

const std::array<CacheStatus, kCacheStatusCount>&
all_cache_statuses() noexcept {
  static const std::array<CacheStatus, kCacheStatusCount> kAll = {
      CacheStatus::kHit,        CacheStatus::kMiss,
      CacheStatus::kRefreshHit, CacheStatus::kNotCacheable,
      CacheStatus::kStale,      CacheStatus::kError,
      CacheStatus::kShed,       CacheStatus::kThrottled,
  };
  return kAll;
}

std::string_view to_string(CacheStatus s) noexcept {
  // No default: a new enumerator must be added here (and to parse) or the
  // -Wall build warns on the unhandled case.
  switch (s) {
    case CacheStatus::kHit: return "HIT";
    case CacheStatus::kMiss: return "MISS";
    case CacheStatus::kRefreshHit: return "REFRESH";
    case CacheStatus::kNotCacheable: return "NOCACHE";
    case CacheStatus::kStale: return "STALE";
    case CacheStatus::kError: return "ERROR";
    case CacheStatus::kShed: return "SHED";
    case CacheStatus::kThrottled: return "THROTTLED";
  }
  return "NOCACHE";
}

bool parse_cache_status(std::string_view token, CacheStatus& out) noexcept {
  if (token == "HIT") {
    out = CacheStatus::kHit;
    return true;
  }
  if (token == "MISS") {
    out = CacheStatus::kMiss;
    return true;
  }
  if (token == "REFRESH") {
    out = CacheStatus::kRefreshHit;
    return true;
  }
  if (token == "NOCACHE") {
    out = CacheStatus::kNotCacheable;
    return true;
  }
  if (token == "STALE") {
    out = CacheStatus::kStale;
    return true;
  }
  if (token == "ERROR") {
    out = CacheStatus::kError;
    return true;
  }
  if (token == "SHED") {
    out = CacheStatus::kShed;
    return true;
  }
  if (token == "THROTTLED") {
    out = CacheStatus::kThrottled;
    return true;
  }
  return false;
}

}  // namespace jsoncdn::logs
