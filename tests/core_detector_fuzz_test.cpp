// Hostile-input properties every strategy in the portfolio must share: the
// validated detect()/detect_all() wrapper rejects garbage deterministically
// (no exceptions, no NaN propagation), degenerate-but-legal inputs don't
// crash, results are reproducible under a fixed rng seed, and the full
// pipeline's labels are identical under 1 and N analysis threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cdn/network.h"
#include "core/period_detector.h"
#include "core/periodicity.h"
#include "oracle/metamorphic.h"
#include "stats/rng.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace jsoncdn::core {
namespace {

std::vector<double> comb(double period, std::size_t ticks, double jitter,
                         std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < ticks; ++i)
    times.push_back(period * static_cast<double>(i) +
                    (jitter > 0.0 ? rng.normal(0.0, jitter) : 0.0));
  std::sort(times.begin(), times.end());
  return times;
}

DetectorParams fast_params() {
  DetectorParams params;
  params.permutations = 100;
  return params;
}

class StrategyFuzzTest : public ::testing::TestWithParam<DetectorStrategy> {
 protected:
  std::unique_ptr<PeriodDetector> detector_ =
      make_period_detector(GetParam(), fast_params());
};

TEST_P(StrategyFuzzTest, NanTimestampIsRejectedDeterministically) {
  auto times = comb(60.0, 40, 1.0, 3);
  times[7] = std::numeric_limits<double>::quiet_NaN();
  stats::Rng rng(1);
  const auto dets = detector_->detect_all(times, rng, 4);
  EXPECT_TRUE(dets.empty());
  EXPECT_FALSE(detector_->detect(times, rng).periodic);
}

TEST_P(StrategyFuzzTest, InfiniteTimestampIsRejected) {
  auto times = comb(60.0, 40, 1.0, 4);
  times.back() = std::numeric_limits<double>::infinity();
  stats::Rng rng(1);
  EXPECT_TRUE(detector_->detect_all(times, rng, 4).empty());
}

TEST_P(StrategyFuzzTest, NonMonotonicInputIsRejected) {
  auto times = comb(60.0, 40, 1.0, 5);
  std::swap(times[10], times[20]);  // strictly decreasing somewhere
  stats::Rng rng(1);
  EXPECT_TRUE(detector_->detect_all(times, rng, 4).empty());
}

TEST_P(StrategyFuzzTest, DuplicateTimestampsAreLegal) {
  // Coincident requests (same poller fleet, same tick) are real traffic,
  // not corruption: the flow must still be analyzable and reproducible.
  auto times = comb(60.0, 30, 0.5, 6);
  std::vector<double> doubled;
  for (const double t : times) {
    doubled.push_back(t);
    doubled.push_back(t);
  }
  stats::Rng r1(2), r2(2);
  const auto a = detector_->detect_all(doubled, r1, 4);
  const auto b = detector_->detect_all(doubled, r2, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].periodic, b[i].periodic);
    EXPECT_EQ(a[i].period_seconds, b[i].period_seconds);
    EXPECT_TRUE(std::isfinite(a[i].period_seconds));
  }
}

TEST_P(StrategyFuzzTest, ZeroVarianceSignalDoesNotCrash) {
  // One request exactly every second: every bin identical, zero variance
  // end to end. Nothing to detect, nothing to throw.
  std::vector<double> times;
  for (int i = 0; i < 600; ++i) times.push_back(static_cast<double>(i));
  stats::Rng rng(8);
  const auto dets = detector_->detect_all(times, rng, 4);
  for (const auto& det : dets) {
    EXPECT_TRUE(std::isfinite(det.period_seconds));
    EXPECT_GT(det.period_seconds, 0.0);
  }
}

TEST_P(StrategyFuzzTest, TooFewRequestsYieldNothing) {
  const std::vector<double> times = {0.0, 60.0, 120.0, 180.0, 240.0};
  stats::Rng rng(9);
  EXPECT_TRUE(detector_->detect_all(times, rng, 4).empty());
  EXPECT_FALSE(detector_->detect(times, rng).periodic);
}

TEST_P(StrategyFuzzTest, ZeroMaxPeriodsYieldsNothing) {
  const auto times = comb(60.0, 40, 1.0, 10);
  stats::Rng rng(11);
  EXPECT_TRUE(detector_->detect_all(times, rng, 0).empty());
}

TEST_P(StrategyFuzzTest, EmptyInputYieldsNothing) {
  stats::Rng rng(12);
  EXPECT_TRUE(detector_->detect_all({}, rng, 4).empty());
}

TEST_P(StrategyFuzzTest, SameSeedSameVerdictOnNoisyInput) {
  stats::Rng noise(77);
  std::vector<double> times;
  double t = 0.0;
  while (t < 3600.0) {
    t += noise.exponential(1.0 / 40.0);
    times.push_back(t);
  }
  stats::Rng r1(5), r2(5);
  const auto a = detector_->detect_all(times, r1, 4);
  const auto b = detector_->detect_all(times, r2, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].period_seconds, b[i].period_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyFuzzTest,
    ::testing::Values(DetectorStrategy::kAcfFft,
                      DetectorStrategy::kLombScargle,
                      DetectorStrategy::kAutoperiod,
                      DetectorStrategy::kCfdAutoperiod,
                      DetectorStrategy::kMultiPeriod),
    [](const ::testing::TestParamInfo<DetectorStrategy>& info) {
      std::string name(detector_name(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- thread invariance across the full pipeline ----------------------------

TEST(StrategyThreadInvariance, LabelsIdenticalUnderOneAndFourThreads) {
  auto wconfig = workload::long_term_scenario(0.001, 21);
  wconfig.duration_seconds = 1800.0;
  wconfig.n_clients = 120;
  wconfig.periodic.embedded = 0.8;
  const workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(),
                          cdn::NetworkParams{});
  const auto json = network.run(workload.events).json_only();
  ASSERT_GT(json.size(), 100u);

  for (const auto& info : detector_registry()) {
    PeriodicityConfig one;
    one.strategy = info.strategy;
    one.threads = 1;
    PeriodicityConfig four = one;
    four.threads = 4;
    const auto labels_one =
        oracle::detection_labels(analyze_periodicity(json, one));
    const auto labels_four =
        oracle::detection_labels(analyze_periodicity(json, four));
    EXPECT_TRUE(oracle::labels_equivalent(labels_one, labels_four))
        << "strategy " << info.name << " is thread-count sensitive";
  }
}

}  // namespace
}  // namespace jsoncdn::core
