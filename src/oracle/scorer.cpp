#include "oracle/scorer.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "core/url_cluster.h"
#include "http/device_db.h"
#include "stats/hash.h"

namespace jsoncdn::oracle {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

std::string flow_key(std::string_view url, std::string_view client) {
  std::string key;
  key.reserve(url.size() + 1 + client.size());
  key.append(url);
  key.push_back('\x1f');
  key.append(client);
  return key;
}

// L1 distance between two share maps over the union of their keys.
template <typename Map>
double l1_distance(const Map& a, const Map& b) {
  double out = 0.0;
  for (const auto& [key, value] : a) {
    const auto it = b.find(key);
    out += std::abs(value - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [key, value] : b) {
    if (!a.contains(key)) out += std::abs(value);
  }
  return out;
}

template <typename Map>
void normalize(Map& shares) {
  double total = 0.0;
  for (const auto& [key, value] : shares) total += value;
  if (total <= 0.0) return;
  for (auto& [key, value] : shares) value /= total;
}

}  // namespace

// ---- Periodicity detector -------------------------------------------------

double DetectorScore::precision() const noexcept {
  return ratio(true_positives, true_positives + false_positives);
}

double DetectorScore::recall() const noexcept {
  return ratio(true_positives, true_positives + false_negatives);
}

double DetectorScore::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double DetectorScore::coverage() const noexcept {
  return ratio(eligible_truth, truth_flows);
}

double DetectorScore::max_period_rel_error() const noexcept {
  double worst = 0.0;
  for (const double e : period_rel_errors) worst = std::max(worst, e);
  return worst;
}

DetectorScore score_periodicity(const core::PeriodicityReport& report,
                                const TruthSidecar& truth,
                                double period_tolerance) {
  DetectorScore score;
  score.truth_flows = truth.periodic_flows.size();

  // (url, client) -> labelled flows. A client can run two periodic flows to
  // the same hub object; the detector reports at most one period per flow,
  // so a detection recovers its best-matching label and any leftover labels
  // on the key count as misses.
  struct Entry {
    double period = 0.0;
    bool eligible = false;
    bool recovered = false;
  };
  std::vector<Entry> entries;
  entries.reserve(truth.periodic_flows.size());
  std::unordered_map<std::string, std::vector<std::size_t>> by_key;
  for (const auto& flow : truth.periodic_flows) {
    by_key[flow_key(flow.url, flow.client_key)].push_back(entries.size());
    entries.push_back({flow.period_seconds, false, false});
  }

  // Flows of labeled attackers score as neither TP nor FP (see the
  // hostile_detections comment in the header). Empty for benign sidecars.
  std::unordered_set<std::string> hostile_clients;
  hostile_clients.reserve(truth.attackers.size());
  for (const auto& a : truth.attackers) hostile_clients.insert(a.client_key);

  for (const auto& object : report.objects) {
    for (const auto& rec : object.clients) {
      ++score.analyzed_flows;
      // All periods this flow's detector reported: the primary plus any
      // extras from the multi-period strategy. Each detection is graded
      // independently — TP against its best unrecovered label, else FP —
      // so a multi-period detector earns its second label but pays for a
      // hallucinated one. Single-period strategies have no extras and
      // score exactly as before.
      if (!hostile_clients.empty() &&
          hostile_clients.count(rec.client) != 0) {
        if (rec.periodic)
          score.hostile_detections += 1 + rec.extra_periods.size();
        continue;
      }
      const auto it = by_key.find(flow_key(object.url, rec.client));
      if (it != by_key.end()) {
        for (const auto idx : it->second) entries[idx].eligible = true;
      }
      if (!rec.periodic) continue;
      const std::size_t detections = 1 + rec.extra_periods.size();
      for (std::size_t d = 0; d < detections; ++d) {
        const double detected_period =
            d == 0 ? rec.period_seconds : rec.extra_periods[d - 1];
        // Detected: find the best-matching label within tolerance.
        std::size_t best = SIZE_MAX;
        double best_err = period_tolerance;
        if (it != by_key.end()) {
          for (const auto idx : it->second) {
            if (entries[idx].recovered) continue;
            const double ref =
                std::max(entries[idx].period, detected_period);
            if (ref <= 0.0) continue;
            const double err =
                std::abs(entries[idx].period - detected_period) / ref;
            if (err <= best_err) {
              best_err = err;
              best = idx;
            }
          }
        }
        if (best != SIZE_MAX) {
          entries[best].recovered = true;
          ++score.true_positives;
          score.period_rel_errors.push_back(best_err);
        } else {
          ++score.false_positives;
        }
      }
    }
  }

  for (const auto& entry : entries) {
    if (!entry.eligible) continue;
    ++score.eligible_truth;
    if (!entry.recovered) ++score.false_negatives;
  }
  return score;
}

// ---- Ngram predictor ------------------------------------------------------

std::map<std::size_t, double> NgramScore::delta() const {
  std::map<std::size_t, double> out;
  for (const auto& [k, sky] : skyline.accuracy_at) {
    const auto it = measured.accuracy_at.find(k);
    out[k] = sky - (it == measured.accuracy_at.end() ? 0.0 : it->second);
  }
  return out;
}

NgramScore score_ngram(const logs::Dataset& json, const TruthSidecar& truth,
                       const core::NgramEvalConfig& config) {
  NgramScore score;
  score.measured = core::evaluate_ngram(json, config);

  // Skyline: the identical protocol over the intended session chains. The
  // client split reuses evaluate_ngram's hash rule, so a client lands on the
  // same side of both runs and the delta compares like with like.
  auto is_train = [&](const std::string& client) {
    const auto h = stats::fnv1a64(client, stats::fnv1a64_mix(config.seed));
    return static_cast<double>(h % 1'000'000) / 1e6 < config.train_fraction;
  };
  auto token_of = [&](const std::string& url) -> std::string {
    if (!config.clustered) return url;
    const auto it = truth.template_of_url.find(url);
    return it != truth.template_of_url.end() ? it->second
                                             : core::cluster_url(url);
  };

  score.skyline.context_len = config.context_len;
  score.skyline.clustered = config.clustered;

  core::NgramModel model(config.context_len);
  std::vector<const TruthSession*> test_sessions;
  std::unordered_set<std::string> train_clients;
  std::unordered_set<std::string> test_clients;
  for (const auto& session : truth.sessions) {
    if (session.urls.size() < std::max<std::size_t>(config.min_flow_requests,
                                                    2)) {
      continue;
    }
    if (is_train(session.client_key)) {
      train_clients.insert(session.client_key);
      std::vector<std::string> tokens;
      tokens.reserve(session.urls.size());
      for (const auto& url : session.urls) tokens.push_back(token_of(url));
      model.observe_sequence(tokens);
    } else {
      test_clients.insert(session.client_key);
      test_sessions.push_back(&session);
    }
  }
  score.skyline.train_clients = train_clients.size();
  score.skyline.test_clients = test_clients.size();

  const std::size_t max_k =
      config.ks.empty()
          ? 1
          : *std::max_element(config.ks.begin(), config.ks.end());
  std::vector<std::uint64_t> hits(config.ks.size(), 0);
  std::uint64_t predictions = 0;
  for (const auto* session : test_sessions) {
    std::vector<std::string> tokens;
    tokens.reserve(session->urls.size());
    for (const auto& url : session->urls) tokens.push_back(token_of(url));
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t ctx = std::min(config.context_len, i);
      const std::span<const std::string> history(&tokens[i - ctx], ctx);
      const auto predicted = model.predict(history, max_k);
      ++predictions;
      for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
        const auto limit = std::min(config.ks[ki], predicted.size());
        for (std::size_t p = 0; p < limit; ++p) {
          if (predicted[p].token == tokens[i]) {
            ++hits[ki];
            break;
          }
        }
      }
    }
  }
  score.skyline.predictions = predictions;
  for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
    score.skyline.accuracy_at[config.ks[ki]] =
        predictions == 0 ? 0.0
                         : static_cast<double>(hits[ki]) /
                               static_cast<double>(predictions);
  }
  return score;
}

// ---- Characterization marginals ------------------------------------------

MarginalScore score_marginals(const logs::Dataset& ds,
                              const core::SourceBreakdown& source,
                              const TruthSidecar& truth) {
  MarginalScore score;

  // Device marginal: classifier-derived request shares vs truth-joined ones.
  constexpr std::array<http::DeviceType, 4> kDevices = {
      http::DeviceType::kMobile, http::DeviceType::kDesktop,
      http::DeviceType::kEmbedded, http::DeviceType::kUnknown};
  std::unordered_map<std::string, std::size_t> device_index;
  for (std::size_t d = 0; d < kDevices.size(); ++d)
    device_index.emplace(std::string(http::to_string(kDevices[d])), d);

  std::unordered_map<std::string, std::size_t> device_of_client;
  device_of_client.reserve(truth.clients.size());
  for (const auto& client : truth.clients) {
    const auto it = device_index.find(client.device);
    if (it != device_index.end())
      device_of_client.emplace(client.client_key, it->second);
  }

  // Labeled attackers are excluded from both sides of the comparison: the
  // marginal grades recovery of the benign population, and hostile UAs
  // (scraper/stuffing bots) would otherwise shift the measured device mix
  // against a truth that only describes benign clients. When the sidecar
  // carries attackers the measured shares are recomputed over the benign
  // records with the same classifier the characterization uses; benign
  // sidecars take the untouched `source` path bit-for-bit.
  std::unordered_set<std::string> attacker_keys;
  attacker_keys.reserve(truth.attackers.size());
  for (const auto& a : truth.attackers) attacker_keys.insert(a.client_key);

  std::array<std::uint64_t, 4> truth_requests{};
  std::array<std::uint64_t, 4> benign_requests{};
  std::uint64_t benign_total = 0;
  std::unordered_map<std::string, std::size_t> ua_device_cache;
  for (const auto& record : ds.records()) {
    if (!attacker_keys.empty() &&
        attacker_keys.count(record.client_key()) != 0) {
      ++score.hostile_requests;
      continue;
    }
    if (!attacker_keys.empty()) {
      const auto [ua_it, inserted] =
          ua_device_cache.try_emplace(record.user_agent, kDevices.size() - 1);
      if (inserted) {
        const auto device = http::classify_device(record.user_agent).device;
        for (std::size_t d = 0; d < kDevices.size(); ++d) {
          if (kDevices[d] == device) {
            ua_it->second = d;
            break;
          }
        }
      }
      ++benign_requests[ua_it->second];
      ++benign_total;
    }
    const auto it = device_of_client.find(record.client_key());
    if (it == device_of_client.end()) {
      ++score.unmatched_requests;
      continue;
    }
    ++score.joined_requests;
    ++truth_requests[it->second];
  }
  if (score.joined_requests > 0) {
    double l1 = 0.0;
    for (std::size_t d = 0; d < kDevices.size(); ++d) {
      const double truth_share =
          ratio(truth_requests[d], score.joined_requests);
      const double measured_share =
          attacker_keys.empty()
              ? source.device_share(kDevices[d])
              : ratio(benign_requests[d], benign_total);
      l1 += std::abs(measured_share - truth_share);
    }
    score.device_request_l1 = l1;
  }

  // Population marginal: realized client-class mix vs configured weights.
  std::map<std::string, double> realized;
  for (const auto& client : truth.clients) realized[client.profile_class] += 1.0;
  auto configured = truth.population_shares;
  normalize(realized);
  normalize(configured);
  score.class_population_l1 = l1_distance(realized, configured);

  // Industry marginal: distinct-domain share per industry vs the uniform
  // per-industry domain assignment the catalog is configured with.
  std::unordered_set<std::string> seen_domains;
  std::map<std::string, double> industry_domains;
  for (const auto& record : ds.records()) {
    if (!seen_domains.insert(record.domain).second) continue;
    const auto it = truth.industry_of_domain.find(record.domain);
    if (it != truth.industry_of_domain.end()) industry_domains[it->second] += 1.0;
  }
  std::map<std::string, double> uniform;
  std::unordered_set<std::string> industries;
  for (const auto& [domain, industry] : truth.industry_of_domain)
    industries.insert(industry);
  for (const auto& industry : industries) uniform[industry] = 1.0;
  normalize(industry_domains);
  normalize(uniform);
  score.industry_domain_l1 = l1_distance(industry_domains, uniform);
  return score;
}

}  // namespace jsoncdn::oracle
