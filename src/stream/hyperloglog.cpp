#include "stream/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "stats/hash.h"
#include "stats/kernels.h"
#include "stats/rng.h"

namespace jsoncdn::stream {

HyperLogLog::HyperLogLog(unsigned precision) : precision_(precision) {
  if (precision < 4 || precision > 18)
    throw std::invalid_argument("HyperLogLog: precision outside [4,18]");
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(std::uint64_t element_hash) {
  // Finalize the caller's hash: the estimator needs every bit independently
  // mixed, and common input hashes (fnv1a over near-identical strings) fall
  // short of that on their own.
  const std::uint64_t mixed = stats::splitmix64(element_hash);
  const std::size_t idx =
      static_cast<std::size_t>(mixed >> (64 - precision_));
  // Rank of the first set bit in the remaining 64-p bits, in [1, 65-p].
  const std::uint64_t rest = mixed << precision_;
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 65 - precision_ : std::countl_zero(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

void HyperLogLog::add(std::string_view element) {
  add(stats::fnv1a64(element));
}

void HyperLogLog::add_batch(const std::uint64_t* element_hashes,
                            std::size_t n) {
  // Finalize a block of hashes at once (salt 0 makes the batch kernel the
  // plain splitmix64 of add()), then apply the inherently scattered register
  // max updates serially. max() commutes, so any grouping of the input into
  // blocks yields the same registers as element-at-a-time add().
  constexpr std::size_t kBlock = 1024;
  std::uint64_t mixed[kBlock];
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t m = std::min(kBlock, n - b);
    stats::kernels::splitmix_batch(element_hashes + b, m, 0, mixed);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t idx =
          static_cast<std::size_t>(mixed[i] >> (64 - precision_));
      const std::uint64_t rest = mixed[i] << precision_;
      const auto rank = static_cast<std::uint8_t>(
          rest == 0 ? 65 - precision_ : std::countl_zero(rest) + 1);
      registers_[idx] = std::max(registers_[idx], rank);
    }
  }
}

double HyperLogLog::standard_error() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (const auto reg : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  const double alpha =
      registers_.size() <= 16   ? 0.673
      : registers_.size() <= 32 ? 0.697
      : registers_.size() <= 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  const double raw = alpha * m * m / inv_sum;
  // Small-range correction: linear counting while registers stay sparse.
  if (raw <= 2.5 * m && zeros > 0)
    return m * std::log(m / static_cast<double>(zeros));
  // 64-bit hashes make the classic large-range correction unnecessary at
  // any cardinality this library will see.
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (precision_ != other.precision_)
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  for (std::size_t i = 0; i < registers_.size(); ++i)
    registers_[i] = std::max(registers_[i], other.registers_[i]);
}

}  // namespace jsoncdn::stream
