// Event-stream utilities: binning request timestamps into uniformly sampled
// count signals (the paper samples at 1 s), and permutation of inter-arrival
// gaps for the detector's significance test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace jsoncdn::stats {

// Bins event timestamps (seconds) into counts per `dt`-second interval over
// [t_begin, t_end). Events outside the window are ignored. Requires dt > 0
// and t_begin < t_end.
[[nodiscard]] std::vector<double> bin_events(std::span<const double> times,
                                             double t_begin, double t_end,
                                             double dt);

// Same, writing into `out` (resized and zeroed) so per-flow callers can
// reuse the allocation across many flows.
void bin_events(std::span<const double> times, double t_begin, double t_end,
                double dt, std::vector<double>& out);

// Inter-arrival gaps of an ascending timestamp sequence (size n -> n-1 gaps).
[[nodiscard]] std::vector<double> interarrival_gaps(
    std::span<const double> times);

// Rebuilds a timestamp sequence from a start time and gaps.
[[nodiscard]] std::vector<double> times_from_gaps(double t0,
                                                  std::span<const double> gaps);

// Random permutation of the inter-arrival gaps, re-accumulated into
// timestamps starting at times.front(). Preserves the gap distribution
// (hence the rate) while destroying gap *order*. Note this is NOT a valid
// periodicity null model: a clean periodic flow has near-constant gaps, so
// any gap order reproduces the same periodic signal — the detector shuffles
// the binned signal instead. Kept as a general resampling utility.
// Requires times.size() >= 2.
[[nodiscard]] std::vector<double> permute_gaps(std::span<const double> times,
                                               Rng& rng);

}  // namespace jsoncdn::stats
