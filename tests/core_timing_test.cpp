#include "core/timing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/prefetch.h"

namespace jsoncdn::core {
namespace {

TEST(GapStats, WelfordMomentsMatchClosedForm) {
  GapStats stats;
  for (const double gap : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(gap);
  }
  EXPECT_EQ(stats.count, 8u);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

TEST(GapStats, SingleObservation) {
  GapStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 3.5);
  EXPECT_DOUBLE_EQ(stats.max, 3.5);
}

TEST(InterarrivalModel, LearnsPerTransitionGaps) {
  InterarrivalModel model;
  model.observe("a", "b", 10.0);
  model.observe("a", "b", 20.0);
  model.observe("a", "c", 100.0);
  const auto* ab = model.stats_for("a", "b");
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->mean, 15.0);
  EXPECT_EQ(model.transition_count(), 2u);
  EXPECT_EQ(model.observations(), 3u);
}

TEST(InterarrivalModel, ExpectedGapFallsBackSourceThenGlobal) {
  InterarrivalModel model;
  model.observe("a", "b", 10.0);
  model.observe("a", "c", 30.0);
  model.observe("x", "y", 100.0);
  // Exact transition.
  EXPECT_DOUBLE_EQ(*model.expected_gap("a", "b"), 10.0);
  // Unseen target from a known source: per-source mean.
  EXPECT_DOUBLE_EQ(*model.expected_gap("a", "zzz"), 20.0);
  // Fully unknown: global mean.
  EXPECT_NEAR(*model.expected_gap("q", "r"), 140.0 / 3.0, 1e-12);
}

TEST(InterarrivalModel, EmptyModelHasNoExpectation) {
  InterarrivalModel model;
  EXPECT_FALSE(model.expected_gap("a", "b").has_value());
}

TEST(InterarrivalModel, RejectsNegativeGaps) {
  InterarrivalModel model;
  EXPECT_THROW(model.observe("a", "b", -1.0), std::invalid_argument);
}

TEST(InterarrivalModel, KeySeparatorPreventsAmbiguity) {
  InterarrivalModel model;
  model.observe("ab", "c", 1.0);
  model.observe("a", "bc", 99.0);
  EXPECT_DOUBLE_EQ(model.stats_for("ab", "c")->mean, 1.0);
  EXPECT_DOUBLE_EQ(model.stats_for("a", "bc")->mean, 99.0);
}

TEST(InterarrivalModel, ObserveDatasetUsesClientFlows) {
  logs::Dataset ds;
  for (int c = 0; c < 3; ++c) {
    double t = c * 1000.0;
    for (const char* url : {"u1", "u2", "u3"}) {
      logs::LogRecord r;
      r.timestamp = t;
      t += 7.0;
      r.client_id = "c" + std::to_string(c);
      r.user_agent = "ua";
      r.url = url;
      r.content_type = "application/json";
      ds.add(r);
    }
  }
  InterarrivalModel model;
  model.observe_dataset(ds);
  EXPECT_EQ(model.observations(), 6u);  // two transitions per client
  ASSERT_NE(model.stats_for("u1", "u2"), nullptr);
  EXPECT_DOUBLE_EQ(model.stats_for("u1", "u2")->mean, 7.0);
  // No cross-client transitions (u3 of client 0 -> u1 of client 1).
  EXPECT_EQ(model.stats_for("u3", "u1"), nullptr);
}

// --- timing-aware prefetching ----------------------------------------------

TEST(NgramPrefetcherTiming, FiltersCandidatesOutsideHorizon) {
  NgramModel ngram(1);
  std::vector<std::string> soon = {"a", "soon"};
  std::vector<std::string> late = {"a", "late"};
  for (int i = 0; i < 5; ++i) {
    ngram.observe_sequence(soon);
    ngram.observe_sequence(late);
  }
  InterarrivalModel timing;
  for (int i = 0; i < 5; ++i) {
    timing.observe("a", "soon", 5.0);
    timing.observe("a", "late", 4000.0);
  }
  PrefetcherParams params;
  params.min_score = 0.0;
  params.max_expected_gap_seconds = 600.0;
  NgramPrefetcher prefetcher(std::move(ngram), params);
  prefetcher.set_timing_model(std::move(timing));

  logs::LogRecord served;
  served.client_id = "c";
  served.user_agent = "ua";
  served.url = "a";
  const auto candidates = prefetcher.candidates(served);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), "soon");
  EXPECT_EQ(prefetcher.timing_filtered(), 1u);
}

TEST(NgramPrefetcherTiming, NoTimingModelMeansNoFiltering) {
  NgramModel ngram(1);
  std::vector<std::string> tokens = {"a", "b"};
  ngram.observe_sequence(tokens);
  PrefetcherParams params;
  params.min_score = 0.0;
  NgramPrefetcher prefetcher(std::move(ngram), params);
  logs::LogRecord served;
  served.client_id = "c";
  served.url = "a";
  EXPECT_EQ(prefetcher.candidates(served).size(), 1u);
  EXPECT_EQ(prefetcher.timing_filtered(), 0u);
}

}  // namespace
}  // namespace jsoncdn::core
