// Section 4 headline statistics: request-type mix (84% GET, 96% of the rest
// POST), response cacheability (55% uncacheable), and the JSON-vs-HTML size
// comparison (24% / 87% smaller at p50 / p75).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/report.h"
#include "core/study.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  bench::print_header("Section 4 headline statistics",
                      "request/response characterization (short-term)");

  core::StudyConfig config;
  config.workload = workload::short_term_scenario(scale);
  const auto result = core::run_study(config);

  std::fputs(core::render_headline(*result.methods, *result.cacheability,
                                   *result.sizes)
                 .c_str(),
             stdout);
  std::printf("\n");
  bench::compare("GET share of JSON requests", 0.84,
                 result.methods->get_share());
  bench::compare("POST share of non-GET requests", 0.96,
                 result.methods->post_share_of_non_get());
  bench::compare("uncacheable share of JSON requests", 0.55,
                 result.cacheability->uncacheable_share());
  bench::compare("JSON p50 / HTML p50", 0.76, result.sizes->p50_ratio());
  bench::compare("JSON p75 / HTML p75", 0.13, result.sizes->p75_ratio());
  return 0;
}
