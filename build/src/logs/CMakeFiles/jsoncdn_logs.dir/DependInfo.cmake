
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/anonymizer.cpp" "src/logs/CMakeFiles/jsoncdn_logs.dir/anonymizer.cpp.o" "gcc" "src/logs/CMakeFiles/jsoncdn_logs.dir/anonymizer.cpp.o.d"
  "/root/repo/src/logs/csv.cpp" "src/logs/CMakeFiles/jsoncdn_logs.dir/csv.cpp.o" "gcc" "src/logs/CMakeFiles/jsoncdn_logs.dir/csv.cpp.o.d"
  "/root/repo/src/logs/dataset.cpp" "src/logs/CMakeFiles/jsoncdn_logs.dir/dataset.cpp.o" "gcc" "src/logs/CMakeFiles/jsoncdn_logs.dir/dataset.cpp.o.d"
  "/root/repo/src/logs/record.cpp" "src/logs/CMakeFiles/jsoncdn_logs.dir/record.cpp.o" "gcc" "src/logs/CMakeFiles/jsoncdn_logs.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
