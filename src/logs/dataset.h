// In-memory log dataset and the flow groupings the paper's analyses run on.
//
// §5.1 defines: an *object flow* is the sequence of requests made by all
// clients to a specific object (unique URL); a *client-object flow* is the
// subsequence from one client, where a client is the (user-agent, anonymized
// IP) pair. The periodicity study filters out client-object flows with fewer
// than 10 requests and object flows with fewer than 10 clients.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "logs/record.h"

namespace jsoncdn::logs {

// Owning, append-only record container. Records are kept in insertion order;
// `sort_by_time()` establishes the ascending-time invariant flow extraction
// requires.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<LogRecord> records);

  void add(LogRecord record);
  void reserve(std::size_t n) { records_.reserve(n); }
  void sort_by_time();

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const LogRecord& operator[](std::size_t i) const {
    return records_[i];
  }

  // New dataset with records satisfying `pred`, order preserved.
  [[nodiscard]] Dataset filter(
      const std::function<bool(const LogRecord&)>& pred) const;

  // Records whose response content-type is application/json — the paper's
  // JSON-traffic filter.
  [[nodiscard]] Dataset json_only() const;

  // [min, max] timestamp over all records; {0, 0} when empty.
  [[nodiscard]] std::pair<double, double> time_range() const;

  // Distinct domains / objects / clients (exact, hash-set based).
  [[nodiscard]] std::size_t distinct_domains() const;
  [[nodiscard]] std::size_t distinct_objects() const;
  [[nodiscard]] std::size_t distinct_clients() const;

 private:
  std::vector<LogRecord> records_;
};

// One client's request subsequence for one object.
struct ClientObjectFlow {
  std::string client;               // client_key() of the requester
  std::vector<double> times;        // ascending request timestamps
  std::vector<std::size_t> record_indices;  // into the source dataset
};

// All requests for one object, with per-client subflows.
struct ObjectFlow {
  std::string url;
  std::vector<double> times;        // ascending, all clients merged
  std::vector<ClientObjectFlow> clients;
  std::size_t total_requests = 0;
  // Fraction of this object's requests that are uncacheable / uploads —
  // used by §5.1's "periodic traffic is 56.2% uncacheable, 78% upload".
  double uncacheable_share = 0.0;
  double upload_share = 0.0;
};

struct FlowFilter {
  // Paper defaults: flows with >= 10 requests, objects with >= 10 clients.
  std::size_t min_client_flow_requests = 10;
  std::size_t min_object_clients = 10;
};

// Groups a (time-sorted) dataset into object flows, applying the filter.
// Client subflows below the request threshold are dropped from `clients` but
// still counted in `times`/`total_requests` (they are real traffic; they are
// just too short to test for periodicity).
[[nodiscard]] std::vector<ObjectFlow> extract_object_flows(
    const Dataset& dataset, const FlowFilter& filter = {});

// Per-client full request sequence (across all objects), used by the ngram
// predictor: each element is (client_key, record indices in time order).
struct ClientFlow {
  std::string client;
  std::vector<std::size_t> record_indices;
};

[[nodiscard]] std::vector<ClientFlow> extract_client_flows(
    const Dataset& dataset, std::size_t min_requests = 2);

}  // namespace jsoncdn::logs
