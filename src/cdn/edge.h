// Edge server: the component whose request logs the paper analyzes. Each
// incoming request is resolved against the customer's cacheability config
// and the edge cache, fetched from origin when needed, logged, and measured.
// An optional prefetch policy (implemented in core/prefetch on top of the
// ngram model) is consulted after every served request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cdn/cache.h"
#include "cdn/metrics.h"
#include "cdn/origin.h"
#include "logs/anonymizer.h"
#include "logs/record.h"
#include "workload/sessions.h"

namespace jsoncdn::cdn {

// Interface the edge consults after serving a request. Implementations
// return URLs to warm into the cache.
class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;
  [[nodiscard]] virtual std::vector<std::string> candidates(
      const logs::LogRecord& served) = 0;
};

struct EdgeParams {
  std::uint64_t cache_capacity_bytes = 512ULL * 1024 * 1024;
  double client_rtt_seconds = 0.020;       // client <-> edge
  double edge_bandwidth_bytes_per_s = 10e6;
  std::size_t max_prefetches_per_request = 3;
  // HTTP Server Push (the other delivery mechanism Section 5.2 proposes):
  // besides warming the edge cache, speculatively send predicted responses
  // to the requesting client. A later request covered by a fresh pushed
  // copy is answered from the client's buffer — no edge round trip.
  bool enable_push = false;
  double push_validity_seconds = 30.0;
  std::size_t max_pushes_per_request = 2;
  // Conditional revalidation: when a cached copy is merely stale, ask the
  // origin to validate it (If-None-Match -> 304) instead of re-transferring
  // the body. Cheaper than a full miss; logged as REFRESH.
  bool enable_revalidation = false;
};

class EdgeServer {
 public:
  EdgeServer(std::uint32_t id, const Origin& origin,
             const logs::Anonymizer& anonymizer, const EdgeParams& params);

  // Serves one request at its event time and returns the log record.
  // `policy` may be nullptr (no prefetching).
  [[nodiscard]] logs::LogRecord handle(const workload::RequestEvent& event,
                                       PrefetchPolicy* policy = nullptr);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const DeliveryMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const LruCache& cache() const noexcept { return cache_; }

 private:
  void maybe_prefetch(const logs::LogRecord& served, PrefetchPolicy* policy,
                      double now);

  std::uint32_t id_;
  const Origin& origin_;
  const logs::Anonymizer& anonymizer_;
  EdgeParams params_;
  LruCache cache_;
  DeliveryMetrics metrics_;
  // URLs currently in cache because of a prefetch, not yet used.
  std::unordered_set<std::string> pending_prefetches_;
  // (client_key \x1f url) -> push expiry time.
  std::unordered_map<std::string, double> pushed_;
};

}  // namespace jsoncdn::cdn
