// Integration: the file-based pipeline the CLI tools use — generate a
// dataset, serialize it to disk, read it back, and verify the analyses see
// the same traffic (the paper's collect-then-analyze-offline workflow).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "cdn/network.h"
#include "core/characterization.h"
#include "logs/csv.h"
#include "oracle/ground_truth.h"
#include "workload/scenario.h"

namespace jsoncdn {
namespace {

class FilePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: parallel ctest processes race on a shared path.
    path_ = ::testing::TempDir() + "jsoncdn_pipeline_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FilePipelineTest, WriteReadAnalyzeAgrees) {
  workload::WorkloadGenerator generator(
      workload::short_term_scenario(0.001, 99));
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);

  {
    std::ofstream out(path_);
    ASSERT_TRUE(out.good());
    logs::LogWriter writer(out);
    for (const auto& record : dataset.records()) writer.write(record);
    ASSERT_EQ(writer.written(), dataset.size());
  }

  std::ifstream in(path_);
  ASSERT_TRUE(in.good());
  logs::LogReader reader(in);
  logs::Dataset loaded(reader.read_all());
  loaded.sort_by_time();
  EXPECT_EQ(reader.malformed_lines(), 0u);
  ASSERT_EQ(loaded.size(), dataset.size());
  EXPECT_EQ(loaded.distinct_domains(), dataset.distinct_domains());
  EXPECT_EQ(loaded.distinct_clients(), dataset.distinct_clients());
  EXPECT_EQ(loaded.distinct_objects(), dataset.distinct_objects());

  // The analyses must be invariant under the disk round trip.
  const auto direct = core::characterize_methods(dataset.json_only());
  const auto from_disk = core::characterize_methods(loaded.json_only());
  EXPECT_EQ(direct.get, from_disk.get);
  EXPECT_EQ(direct.post, from_disk.post);

  const auto direct_source = core::characterize_source(dataset.json_only());
  const auto disk_source = core::characterize_source(loaded.json_only());
  EXPECT_EQ(direct_source.total_requests, disk_source.total_requests);
  EXPECT_EQ(direct_source.browser_requests, disk_source.browser_requests);
  EXPECT_EQ(direct_source.total_ua_strings, disk_source.total_ua_strings);
}

// The jsoncdn-generate --scenario scraper --ground-truth path: a hostile
// scenario's truth sidecar must carry per-attacker labels that survive the
// disk round trip and join back onto the anonymized log by client key.
TEST_F(FilePipelineTest, HostileScenarioSidecarCarriesAttackerLabels) {
  const auto config = workload::scenario_by_name("scraper", 0.001, 44);
  ASSERT_GT(config.hostile.hostile_share, 0.0);
  workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  ASSERT_FALSE(workload.truth.attackers.empty());
  ASSERT_GT(workload.truth.hostile_events, 0u);

  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);
  const auto sidecar =
      oracle::make_sidecar(workload.truth, config, network.anonymizer());
  oracle::write_truth_file(path_, sidecar);
  const auto loaded = oracle::read_truth_file(path_);

  ASSERT_EQ(loaded.attackers.size(), workload.truth.attackers.size());
  EXPECT_EQ(loaded.hostile_events, workload.truth.hostile_events);
  std::unordered_map<std::string, std::uint64_t> truth_count;
  for (const auto& a : loaded.attackers) {
    workload::AttackKind kind{};
    ASSERT_TRUE(workload::parse_attack_kind(a.kind, kind)) << a.kind;
    EXPECT_GT(a.request_count, 0u);
    truth_count.emplace(a.client_key, a.request_count);
  }

  // Every attacker key joins records in the served log (pseudonymized the
  // same way), and the per-request label count matches the truth.
  std::unordered_map<std::string, std::uint64_t> log_count;
  for (const auto& record : dataset.records()) {
    const auto it = truth_count.find(record.client_key());
    if (it != truth_count.end()) ++log_count[it->first];
  }
  EXPECT_EQ(log_count.size(), truth_count.size());
  for (const auto& [key, count] : truth_count) {
    EXPECT_EQ(log_count[key], count) << "attacker key " << key;
  }
}

TEST_F(FilePipelineTest, TruncatedFileDegradesGracefully) {
  {
    std::ofstream out(path_);
    logs::LogWriter writer(out);
    logs::LogRecord record;
    record.url = "https://d/x";
    record.content_type = "application/json";
    writer.write(record);
    out << "corrupted tail without enough columns";
  }
  std::ifstream in(path_);
  logs::LogReader reader(in);
  const auto records = reader.read_all();
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(reader.malformed_lines(), 1u);
}

}  // namespace
}  // namespace jsoncdn
