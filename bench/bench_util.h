// Shared helpers for the figure/table reproduction binaries: a uniform
// "paper vs measured" line format so EXPERIMENTS.md can be assembled from
// bench output directly.
#pragma once

#include <cstdio>
#include <string>

namespace jsoncdn::bench {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

// One comparison row: the paper's reported value vs this reproduction.
inline void compare(const std::string& metric, double paper, double measured,
                    const std::string& unit = "") {
  std::printf("  %-42s paper: %8.3f%s   measured: %8.3f%s\n", metric.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace jsoncdn::bench
