// One-pass, bounded-memory streaming analytics over the edge-log stream.
//
// The batch pipeline (core::characterize_*, core::analyze_periodicity)
// materializes the full log in RAM; this layer ingests records one at a
// time and keeps only mergeable sketch state, so peak memory is a function
// of the sketch configuration — independent of record count — and a
// 35 M-record production stream fits the same footprint as a toy one.
//
// State per accumulator:
//   - exact integer counters where exactness is free: method mix,
//     cacheability, per-device request counts (core::MethodMix,
//     core::CacheabilityStats, core::SourceBreakdown request side);
//   - HyperLogLog for the distinct counts the §5.1 eligibility filters
//     need (URLs, clients, domains, UA strings per device);
//   - Count-Min + Space-Saving for heavy-hitter URLs / clients;
//   - a DDSketch-style quantile sketch + exact moments/min/max for the §4
//     JSON-vs-HTML body-size comparison;
//   - InterarrivalTriage emitting candidate periodic flows for the FFT
//     detector.
//
// Merge contract: StreamingAccumulator::merge(later) folds a shard covering
// a *later* contiguous record range into this one. Counter, CMS, HLL, and
// quantile state is bit-identical to a single-pass ingest for any shard
// partition; Space-Saving contents and triage state are deterministic for a
// fixed (chunk size, thread count) and keep their error guarantees for any
// partition. StreamingStudy::ingest shards each chunk across the PR-1
// stats::ThreadPool and merges in chunk order, so repeated runs with the
// same settings produce identical summaries.
#pragma once

#include <array>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>

#include "core/characterization.h"
#include "logs/record.h"
#include "logs/table.h"
#include "stats/hash.h"
#include "stats/descriptive.h"
#include "stats/parallel.h"
#include "stream/countmin.h"
#include "stream/hyperloglog.h"
#include "stream/quantile.h"
#include "stream/spacesaving.h"
#include "stream/triage.h"

namespace jsoncdn::stream {

struct StreamingConfig {
  // Count-Min error: estimates overshoot by <= cms_epsilon * N with
  // probability 1 - cms_delta.
  double cms_epsilon = 5e-4;
  double cms_delta = 1e-3;
  // Space-Saving counter budget; any key with count > N / heavy_hitters is
  // guaranteed tracked.
  std::size_t heavy_hitters = 512;
  // HLL registers = 2^hll_precision; relative error ~1.04 / 2^(p/2).
  unsigned hll_precision = 12;
  // Quantile relative-value error bound.
  double quantile_alpha = 0.01;
  std::size_t quantile_max_buckets = 4096;
  TriageConfig triage;
  // Worker threads for chunk ingest: 0 = auto (JSONCDN_THREADS env, else
  // hardware_concurrency), same convention as every batch stage.
  std::size_t threads = 0;
};

// The streaming counterpart of the batch §4 results: same field shapes
// (core::MethodMix, core::CacheabilityStats, core::SourceBreakdown,
// stats::Summary) so callers and tests can compare the two directly.
struct StreamingSummary {
  std::uint64_t total_records = 0;
  std::uint64_t json_records = 0;
  double first_timestamp = 0.0;
  double last_timestamp = 0.0;

  // Exact (integer counters, bit-identical to the batch run over the same
  // records). SourceBreakdown's UA-string counters are the one exception:
  // they are HLL estimates, rounded.
  core::MethodMix methods;
  core::CacheabilityStats cacheability;
  // Status mix over the whole stream (not JSON-only) — exact, matches
  // core::characterize_status over the same records.
  core::StatusBreakdown status;
  core::SourceBreakdown source;

  // HLL cardinality estimates with the configured standard error.
  double distinct_urls = 0.0;
  double distinct_clients = 0.0;
  double distinct_domains = 0.0;
  double distinct_ua_strings = 0.0;
  double hll_standard_error = 0.0;

  // Heavy hitters (Space-Saving estimates; count - error <= true <= count).
  std::vector<HeavyHitter> top_urls;
  std::vector<HeavyHitter> top_clients;
  double heavy_hitter_error_bound = 0.0;  // N / heavy_hitters

  // §4 size comparison: count/mean/stddev/min/max exact, percentiles from
  // the quantile sketch (relative error <= quantile_alpha).
  stats::Summary json_sizes;
  stats::Summary html_sizes;
  double quantile_alpha = 0.0;

  // Flows worth running the FFT + permutation detector on.
  std::vector<CandidateFlow> periodic_candidates;

  // Total sketch-state footprint at snapshot time — the number that stays
  // put as the record count grows.
  std::size_t memory_bytes = 0;

  [[nodiscard]] double json_html_p50_ratio() const noexcept {
    return html_sizes.p50 == 0.0 ? 0.0 : json_sizes.p50 / html_sizes.p50;
  }
  [[nodiscard]] double json_html_p75_ratio() const noexcept {
    return html_sizes.p75 == 0.0 ? 0.0 : json_sizes.p75 / html_sizes.p75;
  }
};

// Full per-shard sketch state. offer() consumes one record; merge() folds a
// shard covering a later record range (see the file comment for the
// determinism contract).
class StreamingAccumulator {
 public:
  explicit StreamingAccumulator(const StreamingConfig& config);

  void offer(const logs::LogRecord& record);
  // Columnar variant: fields stream out of the table's columns and the
  // interned client-key dictionary replaces the per-record concatenation.
  // Same record values => same sketch state as the LogRecord overload.
  void offer(const logs::LogTable& table, logs::LogTable::RowIndex row);
  void merge(const StreamingAccumulator& later);

  [[nodiscard]] StreamingSummary summarize() const;
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  StreamingConfig config_;

  std::uint64_t total_records_ = 0;
  std::uint64_t json_records_ = 0;
  double first_ts_ = std::numeric_limits<double>::infinity();
  double last_ts_ = -std::numeric_limits<double>::infinity();

  core::MethodMix methods_;
  core::CacheabilityStats cacheability_;
  core::StatusBreakdown status_;
  core::SourceBreakdown source_;  // request-side counters only

  HyperLogLog urls_;
  HyperLogLog clients_;
  HyperLogLog domains_;
  HyperLogLog ua_strings_;
  std::array<HyperLogLog, 4> ua_by_device_;

  CountMinSketch url_counts_;
  CountMinSketch client_counts_;
  SpaceSaving top_urls_;
  SpaceSaving top_clients_;

  QuantileSketch json_sizes_;
  QuantileSketch html_sizes_;
  stats::RunningMoments json_moments_;
  stats::RunningMoments html_moments_;
  double json_min_ = std::numeric_limits<double>::infinity();
  double json_max_ = -std::numeric_limits<double>::infinity();
  double html_min_ = std::numeric_limits<double>::infinity();
  double html_max_ = -std::numeric_limits<double>::infinity();

  InterarrivalTriage triage_;

  // All field access funnels here; both offer() overloads are thin
  // adapters, so the row and columnar paths cannot drift apart.
  void offer_fields(double timestamp, std::string_view client_key,
                    std::string_view user_agent, http::Method method,
                    std::string_view url, std::string_view domain,
                    std::string_view content_type, int status,
                    std::uint64_t response_bytes,
                    logs::CacheStatus cache_status);

  // Per-accumulator UA classification cache (same trick as the batch
  // characterize_source); bounded so adversarial UA floods cannot grow it.
  // Transparent hashing: lookups by string_view never allocate.
  std::unordered_map<std::string, http::DeviceClassification,
                     stats::TransparentStringHash, std::equal_to<>>
      ua_cache_;
  std::string key_scratch_;  // reused client-key buffer for the record path
};

// One-pass driver: offer records singly or ingest chunks; chunks are
// sharded across the thread pool and merged in chunk order.
class StreamingStudy {
 public:
  explicit StreamingStudy(const StreamingConfig& config = {});

  void offer(const logs::LogRecord& record);
  void ingest(std::span<const logs::LogRecord> chunk);
  // Columnar chunk ingest: shards the row range exactly like the record-span
  // overload (same chunk_range / merge order), so a table streamed with the
  // same chunk size and thread count yields an identical summary.
  void ingest(const logs::LogTable& table,
              std::span<const logs::LogTable::RowIndex> rows);

  [[nodiscard]] StreamingSummary summary() const { return state_.summarize(); }
  [[nodiscard]] std::uint64_t records_ingested() const noexcept {
    return ingested_;
  }
  [[nodiscard]] const StreamingConfig& config() const noexcept {
    return config_;
  }

 private:
  StreamingConfig config_;
  std::size_t threads_;
  stats::ThreadPool pool_;
  StreamingAccumulator state_;
  std::uint64_t ingested_ = 0;
};

// Plain-text rendering in the report.h house style, with the paper's §4/§5
// headline numbers next to their streaming estimates.
[[nodiscard]] std::string render_streaming_summary(
    const StreamingSummary& summary, std::size_t top_n = 10);

}  // namespace jsoncdn::stream
