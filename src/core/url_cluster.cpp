#include "core/url_cluster.h"

#include <cctype>

#include "http/url.h"

namespace jsoncdn::core {

namespace {

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (std::isdigit(c) == 0) return false;
  }
  return true;
}

bool all_hex(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (std::isxdigit(c) == 0) return false;
  }
  return true;
}

bool uuid_shaped(std::string_view s) {
  // 8-4-4-4-12 hex groups.
  if (s.size() != 36) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else if (std::isxdigit(static_cast<unsigned char>(s[i])) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool looks_like_identifier(std::string_view token) {
  if (token.empty()) return false;
  if (all_digits(token)) return true;
  if (uuid_shaped(token)) return true;
  // Long pure-hex tokens (hashes, session keys). Threshold 8 keeps short
  // route words like "feed" or "cache" (hex-only letters are rare in words
  // that long).
  if (token.size() >= 8 && all_hex(token)) return true;
  // Long tokens mixing letters and digits (base64-ish identifiers).
  if (token.size() >= 12) {
    bool has_digit = false;
    bool has_alpha = false;
    for (unsigned char c : token) {
      if (std::isdigit(c) != 0) has_digit = true;
      if (std::isalpha(c) != 0) has_alpha = true;
    }
    if (has_digit && has_alpha) return true;
  }
  return false;
}

std::string cluster_url(std::string_view url) {
  auto parsed = http::parse_url(url);
  if (!parsed) return std::string(url);
  for (auto& segment : parsed->path_segments) {
    if (looks_like_identifier(segment)) segment = "{id}";
  }
  for (auto& [key, value] : parsed->query) {
    if (looks_like_identifier(value)) value = "{v}";
  }
  // Query *values* are collapsed but keys kept: the paper's clustering keeps
  // argument structure while shedding client-specific values.
  return parsed->str();
}

}  // namespace jsoncdn::core
