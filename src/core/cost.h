// Serving-cost model for the §4 provisioning observation: "Reduced response
// sizes increase the CPU cost-per-byte of serving JSON traffic, since a
// large chunk of the total request cost (CPU, network, IO, ...) is tied to
// CPU request processing, which must be taken into account by network
// operators when provisioning the network."
//
// The model splits the cost of serving one request into a fixed per-request
// component (connection handling, parsing, cache lookup — CPU-bound) and
// per-byte components (network egress, storage IO). Aggregating over a log
// dataset per content class yields the cost-per-byte comparison the paper
// argues from: small JSON bodies amortize the fixed CPU cost over far fewer
// bytes than HTML/image traffic does.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "http/mime.h"
#include "logs/dataset.h"

namespace jsoncdn::core {

struct CostModel {
  // Abstract cost units; only ratios matter for provisioning comparisons.
  double cpu_per_request = 1.0;      // fixed request-processing cost
  double cpu_per_kilobyte = 0.02;    // body handling (checksums, TLS, copy)
  double network_per_kilobyte = 0.1; // egress
  double origin_per_request = 2.0;   // extra cost when tunneled to origin
};

struct ClassCost {
  http::ContentClass content = http::ContentClass::kOther;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  double cpu_cost = 0.0;
  double network_cost = 0.0;
  double origin_cost = 0.0;

  [[nodiscard]] double total_cost() const noexcept {
    return cpu_cost + network_cost + origin_cost;
  }
  // Cost per kilobyte served — the paper's provisioning metric.
  [[nodiscard]] double cost_per_kilobyte() const noexcept;
  // Share of this class's cost that is CPU-bound.
  [[nodiscard]] double cpu_share() const noexcept;
};

struct CostReport {
  std::vector<ClassCost> by_class;  // only classes with traffic, by cost desc
  double total_cost = 0.0;

  [[nodiscard]] const ClassCost* find(http::ContentClass content) const;
};

// Prices every record of the dataset under the model. Origin cost applies
// to records that were tunneled or missed (anything not served from cache).
[[nodiscard]] CostReport analyze_costs(const logs::Dataset& ds,
                                       const CostModel& model = {});

// Text rendering for benches/examples.
[[nodiscard]] std::string render_costs(const CostReport& report);

}  // namespace jsoncdn::core
