// Domain and object catalogs: the simulated CDN customer base.
//
// Each domain gets an industry category (Fig. 4), a cacheable-object share
// drawn from its category's mixture, and a catalog of concrete objects (JSON
// API endpoints, HTML pages, static subresources) with per-object
// content-type, size, cacheability, and TTL. The CDN simulator uses the
// object catalog as its origin database; the workload session models request
// objects from it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/method.h"
#include "http/mime.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "workload/industry.h"

namespace jsoncdn::workload {

// A concrete servable object as the origin knows it.
struct ObjectSpec {
  std::string url;           // full URL (https://domain/path)
  std::string domain;
  http::ContentClass content = http::ContentClass::kJson;
  std::string content_type;  // header value served with the object
  bool cacheable = false;
  double ttl_seconds = 300.0;
  std::uint64_t body_bytes = 512;
};

// URL-keyed object lookup.
class ObjectCatalog {
 public:
  // Registers an object; returns a stable index. Re-registering the same URL
  // throws (catalog construction is programmatic, duplicates are bugs).
  std::size_t add(ObjectSpec spec);

  [[nodiscard]] const ObjectSpec* find(std::string_view url) const;
  [[nodiscard]] const ObjectSpec& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] const std::vector<ObjectSpec>& objects() const noexcept {
    return objects_;
  }

 private:
  std::vector<ObjectSpec> objects_;
  std::unordered_map<std::string, std::size_t> by_url_;
};

// Response-size model parameters per content class. Central so the §4
// JSON-vs-HTML size comparison is tunable in one place.
[[nodiscard]] stats::BodySizeSampler::Params size_params(
    http::ContentClass content);

// Standard content-type header value for a class.
[[nodiscard]] std::string content_type_for(http::ContentClass content);

// One CDN customer domain.
struct DomainSpec {
  std::string name;              // e.g. "api.fin-003.example"
  Industry industry = Industry::kTechnology;
  double cacheable_share = 0.0;  // ground-truth share of cacheable objects
  double popularity_weight = 1.0;  // relative traffic volume
  // Indices into the shared ObjectCatalog, grouped by role.
  std::vector<std::size_t> json_objects;    // API endpoints (non-manifest)
  std::vector<std::size_t> html_objects;    // pages, for browser sessions
  std::vector<std::size_t> asset_objects;   // css/js/images
  std::optional<std::size_t> telemetry_object;  // POST beacon endpoint
  std::optional<std::size_t> poll_object;       // GET polling endpoint
  // Per-page fixed dependency lists (parallel to html_objects): the assets
  // and JSON XHRs each page references. Browser traffic is template-driven
  // — "a well known pattern that is derived from the HTML template" (§4) —
  // so the reference lists are a property of the page, not of the visit.
  std::vector<std::vector<std::size_t>> page_assets;
  std::vector<std::vector<std::size_t>> page_xhrs;
};

struct CatalogConfig {
  std::size_t domains_per_industry = 4;
  std::size_t json_objects_per_domain = 30;
  std::size_t html_objects_per_domain = 10;
  std::size_t asset_objects_per_domain = 12;
  double default_ttl_seconds = 3600.0;
  double domain_popularity_zipf_s = 0.55;  // traffic skew across domains
  // Additive shift of the JSON log-size mean; the Fig. 1 longitudinal model
  // uses a negative shift in later years ("average JSON response size has
  // decreased by around 28% since 2016", §4).
  double json_size_log_shift = 0.0;
};

// The full customer base: domains plus the shared object catalog.
class DomainCatalog {
 public:
  // Deterministically generates domains and objects from (config, rng).
  DomainCatalog(const CatalogConfig& config, stats::Rng rng);

  [[nodiscard]] const std::vector<DomainSpec>& domains() const noexcept {
    return domains_;
  }
  [[nodiscard]] const ObjectCatalog& objects() const noexcept {
    return objects_;
  }
  [[nodiscard]] ObjectCatalog& mutable_objects() noexcept { return objects_; }

  // Picks a domain index by popularity weight.
  [[nodiscard]] std::size_t sample_domain(stats::Rng& rng) const;
  // Indices of the k most popular domains, most popular first.
  [[nodiscard]] std::vector<std::size_t> top_domains(std::size_t k) const;

 private:
  std::vector<DomainSpec> domains_;
  ObjectCatalog objects_;
  std::vector<double> popularity_;
};

}  // namespace jsoncdn::workload
