// Figure 3: "Categorization by device type" + the Section 4 traffic-source
// text numbers (UA-string distribution, browser shares).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/report.h"
#include "core/study.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  bench::print_header("Figure 3", "JSON traffic by device type (short-term)");

  core::StudyConfig config;
  config.workload = workload::short_term_scenario(scale);
  const auto result = core::run_study(config);
  const auto& source = *result.source;

  std::fputs(core::render_source(source).c_str(), stdout);
  std::printf("\n");
  bench::compare("mobile share of JSON requests", 0.55,
                 source.device_share(http::DeviceType::kMobile));
  bench::compare("embedded share of JSON requests", 0.12,
                 source.device_share(http::DeviceType::kEmbedded));
  bench::compare("unknown share of JSON requests", 0.24,
                 source.device_share(http::DeviceType::kUnknown));
  bench::compare("mobile share of UA strings", 0.73,
                 source.ua_string_share(http::DeviceType::kMobile));
  bench::compare("embedded share of UA strings", 0.17,
                 source.ua_string_share(http::DeviceType::kEmbedded));
  bench::compare("desktop share of UA strings", 0.03,
                 source.ua_string_share(http::DeviceType::kDesktop));
  bench::compare("non-browser share", 0.88, source.non_browser_share());
  bench::compare("mobile-browser share", 0.025,
                 source.mobile_browser_share());
  return 0;
}
