# Empty compiler generated dependencies file for jsoncdn_core.
# This may be replaced when dependencies are built.
