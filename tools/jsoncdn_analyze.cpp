// jsoncdn-analyze — run the paper's analyses over a log file.
//
//   jsoncdn-analyze FILE [--characterize] [--periodicity] [--ngram] [--all]
//                   [--streaming] [--chunk-size N]
//                   [--permutations N] [--threads N]
//                   [--strict] [--quarantine FILE] [--max-error-share F]
//
// Consumes the TSV format written by jsoncdn-generate (or any producer of
// the same schema) and prints the corresponding figures/tables. Exactly the
// paper's situation: the analyst sees only the logs. A `.jlog` columnar
// sidecar (written by jsoncdn-generate --jlog) is detected by magic and
// loaded directly — no re-parse, no re-validation.
//
// The file is parsed exactly once, zero-copy, into a columnar LogTable;
// the batch and streaming paths both consume views of that one table, so a
// comparison run no longer pays (or skews on) a second ingest.
//
// Ingestion is hardened: by default malformed lines are skipped, counted
// per reason, and (with --quarantine) preserved for inspection; the run
// fails if the rejected share exceeds --max-error-share. --strict instead
// aborts on the first bad line, naming it. An empty or unreadable log is
// always an error — analyses over zero records are never silently printed.
//
// --streaming switches to the one-pass bounded-memory pipeline
// (stream::StreamingStudy): the table is consumed in --chunk-size record
// chunks, sketches replace exact tables, and the periodicity detector runs
// a targeted second pass over triage-selected candidate flows only.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>

#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "http/mime.h"
#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "logs/zerocopy.h"
#include "stats/parallel.h"
#include "stream/streaming_study.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jsoncdn-analyze FILE [--characterize] [--periodicity]\n"
               "                       [--ngram] [--all] [--permutations N]\n"
               "                       [--streaming] [--chunk-size N]\n"
               "                       [--threads N]  (0 = auto)\n"
               "                       [--strict] [--quarantine FILE]\n"
               "                       [--max-error-share F]  (0..1)\n");
}

// Ingest-side knobs shared by the batch and streaming paths.
struct IngestFlags {
  bool strict = false;
  std::string quarantine_path;
  double max_error_share = 1.0;  // 1.0 = any amount of garbage tolerated
};

// Prints the ingest report (stderr — it is diagnostics, not analysis
// output) and enforces the error budget. Returns false when the budget is
// blown or nothing was ingested.
bool check_ingest(const jsoncdn::logs::IngestReport& report,
                  const IngestFlags& flags, const std::string& path) {
  if (report.malformed > 0) {
    std::fputs(jsoncdn::logs::render_ingest_report(report).c_str(), stderr);
  }
  if (report.records == 0) {
    std::fprintf(stderr,
                 "error: no records ingested from %s (empty or fully "
                 "malformed log)\n",
                 path.c_str());
    return false;
  }
  if (report.error_share() > flags.max_error_share) {
    std::fprintf(stderr,
                 "error: ingest error share %.4f exceeds budget %.4f\n",
                 report.error_share(), flags.max_error_share);
    return false;
  }
  return true;
}

// One-pass streaming path over the already-loaded table, consumed in file
// order (the order the stream would arrive) in --chunk-size chunks — the
// same chunk geometry the old parse-as-you-go path produced, so summaries
// are unchanged. The periodicity second pass selects candidate-flow rows
// from the same table instead of re-reading the file.
int run_streaming(const jsoncdn::logs::LogTable& table,
                  const std::string& path, bool periodicity,
                  std::size_t chunk_size, std::size_t permutations,
                  std::size_t threads) {
  using namespace jsoncdn;
  using RowIndex = logs::LogTable::RowIndex;

  stream::StreamingConfig config;
  config.threads = threads;
  stream::StreamingStudy study(config);

  std::vector<RowIndex> order(table.size());
  std::iota(order.begin(), order.end(), RowIndex{0});
  for (std::size_t begin = 0; begin < order.size(); begin += chunk_size) {
    const std::size_t len = std::min(chunk_size, order.size() - begin);
    study.ingest(table, std::span<const RowIndex>(&order[begin], len));
  }
  const auto summary = study.summary();
  std::printf("streamed %llu records (%llu JSON) from %s in chunks of %zu\n\n",
              static_cast<unsigned long long>(summary.total_records),
              static_cast<unsigned long long>(summary.json_records),
              path.c_str(), chunk_size);
  std::fputs(stream::render_streaming_summary(summary).c_str(), stdout);

  if (periodicity && !summary.periodic_candidates.empty()) {
    std::unordered_set<std::string_view> candidates;
    for (const auto& c : summary.periodic_candidates)
      candidates.insert(c.key);
    std::vector<RowIndex> subset;
    for (RowIndex i = 0; i < table.size(); ++i) {
      if (http::is_json(table.content_type(i)) &&
          candidates.contains(table.url(i)))
        subset.push_back(i);
    }
    // Same stable time order Dataset::sort_by_time() would give the subset.
    std::stable_sort(subset.begin(), subset.end(),
                     [&](RowIndex a, RowIndex b) {
                       return table.timestamp(a) < table.timestamp(b);
                     });

    core::PeriodicityConfig pconfig;
    pconfig.detector.permutations = permutations;
    pconfig.threads = threads;
    pconfig.total_requests_override =
        static_cast<std::size_t>(summary.json_records);
    const auto report = core::analyze_periodicity(
        logs::TableView(table, subset), pconfig);
    std::printf("\nperiodicity (targeted pass over %zu candidate flows, "
                "%zu records):\n",
                summary.periodic_candidates.size(), subset.size());
    std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
    std::fputs(core::render_period_histogram(report.object_periods).c_str(),
               stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string path = argv[1];
  bool characterize = false;
  bool periodicity = false;
  bool ngram = false;
  bool streaming = false;
  IngestFlags flags;
  std::size_t chunk_size = 65536;
  std::size_t permutations = 100;
  std::size_t threads = 0;  // auto
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--characterize") {
      characterize = true;
    } else if (arg == "--periodicity") {
      periodicity = true;
    } else if (arg == "--ngram") {
      ngram = true;
    } else if (arg == "--all") {
      characterize = periodicity = ngram = true;
    } else if (arg == "--streaming") {
      streaming = true;
    } else if (arg == "--chunk-size" && i + 1 < argc) {
      chunk_size = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (chunk_size == 0) chunk_size = 1;
    } else if (arg == "--permutations" && i + 1 < argc) {
      permutations = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--strict") {
      flags.strict = true;
    } else if (arg == "--quarantine" && i + 1 < argc) {
      flags.quarantine_path = argv[++i];
    } else if (arg == "--max-error-share" && i + 1 < argc) {
      flags.max_error_share = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (!characterize && !periodicity && !ngram) characterize = true;
  const std::size_t effective_threads = jsoncdn::stats::resolve_threads(threads);

  std::ofstream quarantine_stream;
  std::optional<logs::StreamQuarantine> quarantine;
  if (!flags.quarantine_path.empty()) {
    quarantine_stream.open(flags.quarantine_path);
    if (!quarantine_stream) {
      std::fprintf(stderr, "error: cannot open quarantine file: %s\n",
                   flags.quarantine_path.c_str());
      return 2;
    }
    quarantine.emplace(quarantine_stream);
  }
  logs::IngestOptions options;
  options.mode =
      flags.strict ? logs::ParseMode::kStrict : logs::ParseMode::kPermissive;
  options.quarantine = quarantine ? &*quarantine : nullptr;

  // Single ingest for every mode: zero-copy TSV parse into the columnar
  // table, or a direct .jlog load when the file carries the binary magic.
  logs::IngestReport report;
  logs::LogTable table;
  try {
    table = logs::is_jlog_file(path) ? logs::read_jlog(path, &report)
                                     : logs::read_log_table(path, options,
                                                            &report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (!check_ingest(report, flags, path)) return 1;

  if (streaming) {
    return run_streaming(table, path, periodicity, chunk_size, permutations,
                         effective_threads);
  }

  table.sort_by_time();
  const auto json_indices = table.json_rows();
  const logs::TableView full(table);
  const logs::TableView json(table, json_indices);
  std::printf("loaded %zu records (%zu JSON) from %s\n", table.size(),
              json.size(), path.c_str());
  std::printf("domains: %zu, objects: %zu, clients: %zu\n\n",
              table.distinct_domains(), table.distinct_objects(),
              table.distinct_clients());

  if (characterize) {
    std::fputs(core::render_source(
                   core::characterize_source(json, effective_threads))
                   .c_str(),
               stdout);
    std::printf("\n");
    std::fputs(core::render_headline(
                   core::characterize_methods(json, effective_threads),
                   core::characterize_cacheability(json, effective_threads),
                   core::compare_sizes(full, effective_threads))
                   .c_str(),
               stdout);
    std::printf("\n");
    // Without an external categorization service, group the heatmap by
    // registrable domain prefix (the synthetic logs encode the industry in
    // the hostname; real logs would plug a categorization database in here).
    const core::IndustryLookup lookup = [](std::string_view domain) {
      const auto dot = domain.find('.');
      const auto dash = domain.find('-');
      if (dot != std::string_view::npos && dash != std::string_view::npos &&
          dash > dot) {
        return std::string(domain.substr(dot + 1, dash - dot - 1));
      }
      return std::string("other");
    };
    const auto domains =
        core::domain_cacheability(json, lookup, effective_threads);
    std::fputs(core::render_heatmap(core::cacheability_heatmap(domains))
                   .c_str(),
               stdout);
    std::printf("\n");
    // Empty string (and so no output) on an error-free log.
    const auto status_block = core::render_status(
        core::characterize_status(full, effective_threads));
    if (!status_block.empty()) {
      std::fputs(status_block.c_str(), stdout);
      std::printf("\n");
    }
  }

  if (periodicity) {
    core::PeriodicityConfig config;
    config.detector.permutations = permutations;
    config.threads = effective_threads;
    const auto report = core::analyze_periodicity(json, config);
    std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
    std::fputs(core::render_period_histogram(report.object_periods).c_str(),
               stdout);
    std::fputs(
        core::render_periodic_client_cdf(report.periodic_client_shares)
            .c_str(),
        stdout);
    std::printf("\n");
  }

  if (ngram) {
    std::vector<core::NgramAccuracy> rows;
    for (const bool clustered : {true, false}) {
      core::NgramEvalConfig config;
      config.clustered = clustered;
      config.threads = effective_threads;
      rows.push_back(core::evaluate_ngram(json, config));
    }
    std::fputs(core::render_ngram_table(rows).c_str(), stdout);
  }
  return 0;
}
