#include "stream/triage.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "stats/rng.h"

namespace jsoncdn::stream {

void InterarrivalTriage::FlowState::note_client(
    std::uint64_t client_hash) noexcept {
  const std::uint64_t mixed = stats::splitmix64(client_hash);
  const std::size_t bit = static_cast<std::size_t>(mixed & 0xff);
  client_bits[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

double InterarrivalTriage::FlowState::estimated_clients() const noexcept {
  std::size_t set = 0;
  for (const auto word : client_bits) set += std::popcount(word);
  const double m = 256.0;
  const auto zeros = static_cast<double>(256 - set);
  if (zeros <= 0.0) return m * std::log(m);  // saturated; far above filters
  return m * std::log(m / zeros);
}

InterarrivalTriage::InterarrivalTriage(const TriageConfig& config)
    : config_(config), heavy_(config.max_flows) {
  states_.reserve(config.max_flows);
}

void InterarrivalTriage::offer(std::string_view key,
                               std::uint64_t client_hash, double timestamp) {
  if (auto evicted = heavy_.offer(key)) states_.erase(*evicted);
  auto [it, inserted] = states_.try_emplace(std::string(key));
  FlowState& state = it->second;
  if (inserted) {
    state.first_ts = timestamp;
  } else {
    const double gap = timestamp - state.last_ts;
    if (gap >= 0.0) state.gaps.add(gap);
  }
  state.last_ts = timestamp;
  ++state.requests;
  state.note_client(client_hash);
}

void InterarrivalTriage::merge(const InterarrivalTriage& other) {
  heavy_.merge(other.heavy_);
  for (const auto& [key, theirs] : other.states_) {
    auto [it, inserted] = states_.try_emplace(key, theirs);
    if (inserted) continue;
    FlowState& mine = it->second;
    // `other` covers the later record range: stitch the boundary gap
    // between this shard's last request and the other's first.
    const double boundary = theirs.first_ts - mine.last_ts;
    mine.gaps.merge(theirs.gaps);
    if (boundary >= 0.0 && mine.requests > 0 && theirs.requests > 0)
      mine.gaps.add(boundary);
    mine.requests += theirs.requests;
    mine.first_ts = std::min(mine.first_ts, theirs.first_ts);
    mine.last_ts = std::max(mine.last_ts, theirs.last_ts);
    for (std::size_t w = 0; w < mine.client_bits.size(); ++w)
      mine.client_bits[w] |= theirs.client_bits[w];
  }
  // The merged heavy set is the admission authority: drop state for flows
  // that fell out of it.
  std::erase_if(states_, [&](const auto& entry) {
    return !heavy_.contains(entry.first);
  });
}

std::vector<CandidateFlow> InterarrivalTriage::candidates() const {
  std::vector<CandidateFlow> out;
  for (const auto& [key, state] : states_) {
    if (state.requests < config_.min_requests) continue;
    const double span = state.last_ts - state.first_ts;
    if (span < config_.min_span_seconds) continue;
    const double clients = state.estimated_clients();
    if (clients + 0.5 < static_cast<double>(config_.min_clients)) continue;
    const double cv = state.gaps.coefficient_of_variation();
    if (cv > config_.max_gap_cv) continue;
    CandidateFlow c;
    c.key = key;
    c.requests = state.requests;
    c.span_seconds = span;
    c.mean_gap = state.gaps.mean();
    c.gap_cv = cv;
    c.estimated_clients = clients;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const CandidateFlow& a, const CandidateFlow& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.key < b.key;
            });
  return out;
}

std::size_t InterarrivalTriage::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this) + heavy_.memory_bytes();
  for (const auto& [key, state] : states_)
    bytes += key.capacity() + sizeof(FlowState) + sizeof(void*) * 2;
  return bytes;
}

}  // namespace jsoncdn::stream
