#include "faults/plan.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "stats/hash.h"

namespace jsoncdn::faults {

namespace {

// Unit-interval double from well-mixed bits (same construction the standard
// library uses for generate_canonical on 53 bits).
constexpr double to_unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Draw chain for one (seed, origin, ordinal) triple: successive draws step
// the splitmix64 sequence from a well-mixed starting point.
struct DrawChain {
  std::uint64_t state;
  double next() {
    state = stats::splitmix64(state);
    return to_unit(state);
  }
};

constexpr std::uint64_t kOutageStreamKey = 0x6f757467;  // "outg"

bool window_covers(const std::vector<OutageWindow>& windows, double now) {
  for (const auto& w : windows) {
    if (now < w.start) return false;
    if (now < w.end) return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(FaultOutcome o) noexcept {
  switch (o) {
    case FaultOutcome::kOk: return "ok";
    case FaultOutcome::kError: return "error";
    case FaultOutcome::kTimeout: return "timeout";
    case FaultOutcome::kTruncated: return "truncated";
  }
  return "ok";
}

std::uint64_t env_fault_seed(std::uint64_t fallback) noexcept {
  const char* env = std::getenv("JSONCDN_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

FaultPlan::FaultPlan(const FaultPlanConfig& config) : config_(config) {
  const double total = config.error_rate + config.timeout_rate +
                       config.truncate_rate + config.latency_spike_rate;
  if (config.error_rate < 0.0 || config.timeout_rate < 0.0 ||
      config.truncate_rate < 0.0 || config.latency_spike_rate < 0.0 ||
      total > 1.0) {
    throw std::invalid_argument(
        "FaultPlan: rates must be in [0,1] and sum <= 1");
  }
  if (config.latency_spike_multiplier < 1.0)
    throw std::invalid_argument("FaultPlan: spike multiplier < 1");
  if (config.horizon_seconds < 0.0 || config.outages_per_origin < 0.0 ||
      config.mean_outage_seconds <= 0.0) {
    throw std::invalid_argument("FaultPlan: bad outage parameters");
  }
}

FaultDecision FaultPlan::draw(std::string_view origin_key,
                              std::uint64_t k) const {
  FaultDecision decision;
  DrawChain chain{stats::splitmix64(
      config_.seed ^ stats::splitmix64(stats::fnv1a64(origin_key) ^
                                       stats::splitmix64(k)))};
  const double u = chain.next();
  double threshold = config_.timeout_rate;
  if (u < threshold) {
    decision.outcome = FaultOutcome::kTimeout;
    decision.status = 504;
    return decision;
  }
  threshold += config_.error_rate;
  if (u < threshold) {
    decision.outcome = FaultOutcome::kError;
    // Mix of the 5xx statuses an unhealthy origin actually emits.
    const double pick = chain.next();
    decision.status = pick < 0.5 ? 503 : (pick < 0.8 ? 500 : 502);
    return decision;
  }
  threshold += config_.truncate_rate;
  if (u < threshold) {
    decision.outcome = FaultOutcome::kTruncated;
    return decision;
  }
  threshold += config_.latency_spike_rate;
  if (u < threshold) {
    // Spike in [multiplier/2, multiplier): slow, not hung.
    decision.latency_multiplier =
        config_.latency_spike_multiplier * (0.5 + 0.5 * chain.next());
  }
  return decision;
}

FaultDecision FaultPlan::decide(std::string_view origin_key, std::uint64_t k,
                                double now) const {
  if (!config_.enabled) return {};
  if (window_covers(outages(origin_key), now)) {
    FaultDecision decision;
    decision.outcome = FaultOutcome::kError;
    decision.status = 503;
    decision.outage = true;
    return decision;
  }
  return draw(origin_key, k);
}

FaultDecision FaultPlan::next(std::string_view origin_key, double now) {
  if (!config_.enabled) return {};
  auto& state = origins_[std::string(origin_key)];
  if (!state.windows_computed) {
    state.windows = outages(origin_key);
    state.windows_computed = true;
  }
  const auto ordinal = state.ordinal++;
  if (window_covers(state.windows, now)) {
    FaultDecision decision;
    decision.outcome = FaultOutcome::kError;
    decision.status = 503;
    decision.outage = true;
    return decision;
  }
  return draw(origin_key, ordinal);
}

std::vector<OutageWindow> FaultPlan::outages(
    std::string_view origin_key) const {
  std::vector<OutageWindow> windows;
  if (!config_.enabled || config_.horizon_seconds <= 0.0 ||
      config_.outages_per_origin <= 0.0) {
    return windows;
  }
  // One independent stream per origin, derived from (seed, origin) only —
  // stable no matter how many requests the origin has seen.
  stats::Rng rng = stats::Rng(config_.seed)
                       .fork(kOutageStreamKey)
                       .fork(stats::fnv1a64(origin_key));
  // Expected count with the fractional part resolved by a Bernoulli draw,
  // so e.g. 1.25 outages/origin gives some origins 1 window and some 2.
  const auto base = static_cast<std::int64_t>(config_.outages_per_origin);
  const double fraction =
      config_.outages_per_origin - static_cast<double>(base);
  const std::int64_t count = base + (rng.bernoulli(fraction) ? 1 : 0);
  for (std::int64_t i = 0; i < count; ++i) {
    OutageWindow w;
    w.start = rng.uniform(0.0, config_.horizon_seconds);
    w.end = w.start + rng.exponential(1.0 / config_.mean_outage_seconds);
    windows.push_back(w);
  }
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start < b.start;
            });
  // Coalesce overlaps so the in-window check is a simple interval scan.
  std::vector<OutageWindow> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

bool FaultPlan::in_outage(std::string_view origin_key, double now) const {
  return window_covers(outages(origin_key), now);
}

}  // namespace jsoncdn::faults
