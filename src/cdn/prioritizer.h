// Request scheduler for the paper's proposed optimization: "CDN operators
// [can] deprioritize machine-to-machine traffic since a human is not waiting
// for the response" (§5.1). Models an edge's request-processing pipeline as
// a multi-server non-preemptive queue with two classes (human, machine) and
// compares FIFO against strict human-priority scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/descriptive.h"

namespace jsoncdn::cdn {

struct SchedulerJob {
  double arrival = 0.0;   // seconds
  double service = 0.0;   // processing time, seconds
  bool machine = false;   // machine-to-machine traffic?
};

struct ClassQueueStats {
  std::size_t count = 0;
  stats::Summary waiting;   // queueing delay
  stats::Summary sojourn;   // waiting + service
};

struct ScheduleResult {
  ClassQueueStats human;
  ClassQueueStats machine;
};

enum class SchedulingPolicy {
  kFifo,           // arrival order, class-blind
  kHumanPriority,  // human-class jobs always dispatched first
};

// Simulates `servers` parallel workers over the job list. Non-preemptive:
// a running job finishes before the next dispatch decision. Deterministic.
[[nodiscard]] ScheduleResult simulate_schedule(std::vector<SchedulerJob> jobs,
                                               SchedulingPolicy policy,
                                               std::size_t servers = 1);

}  // namespace jsoncdn::cdn
