# Empty compiler generated dependencies file for fig6_periodic_client_cdf.
# This may be replaced when dependencies are built.
