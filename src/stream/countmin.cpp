#include "stream/countmin.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/hash.h"
#include "stats/kernels.h"
#include "stats/rng.h"

namespace jsoncdn::stream {

CountMinSketch::CountMinSketch(double epsilon, double delta,
                               std::uint64_t seed)
    : epsilon_(epsilon), delta_(delta), seed_(seed) {
  if (!(epsilon > 0.0 && epsilon < 1.0))
    throw std::invalid_argument("CountMinSketch: epsilon outside (0,1)");
  if (!(delta > 0.0 && delta < 1.0))
    throw std::invalid_argument("CountMinSketch: delta outside (0,1)");
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / epsilon));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  width_ = std::max<std::size_t>(width_, 2);
  depth_ = std::max<std::size_t>(depth_, 1);
  cells_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::cell(std::size_t row,
                                 std::uint64_t key_hash) const noexcept {
  // Row hashes are derived by re-mixing the key hash with a per-row seed;
  // splitmix64 gives independent-enough functions for the CM analysis.
  const std::uint64_t h =
      stats::splitmix64(key_hash ^ stats::splitmix64(seed_ + row + 1));
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::add(std::uint64_t key_hash, std::uint64_t count) {
  for (std::size_t row = 0; row < depth_; ++row)
    cells_[cell(row, key_hash)] += count;
  total_ += count;
}

void CountMinSketch::add(std::string_view key, std::uint64_t count) {
  add(stats::fnv1a64(key), count);
}

void CountMinSketch::add_batch(const std::uint64_t* key_hashes,
                               std::size_t n) {
  // Per row: batch the splitmix remix (salt = splitmix64(seed_ + row + 1),
  // exactly the inner mix cell() applies), then do the % width_ fold and
  // scatter increments serially — the modulus defines which cells a key owns
  // and cannot change without changing every estimate. Increments commute,
  // so the cells end up bit-identical to n add() calls.
  constexpr std::size_t kBlock = 1024;
  std::uint64_t mixed[kBlock];
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t m = std::min(kBlock, n - b);
    for (std::size_t row = 0; row < depth_; ++row) {
      const std::uint64_t salt = stats::splitmix64(seed_ + row + 1);
      stats::kernels::splitmix_batch(key_hashes + b, m, salt, mixed);
      std::uint64_t* row_cells = cells_.data() + row * width_;
      for (std::size_t i = 0; i < m; ++i) {
        row_cells[static_cast<std::size_t>(mixed[i] % width_)] += 1;
      }
    }
  }
  total_ += n;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key_hash) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t row = 0; row < depth_; ++row)
    best = std::min(best, cells_[cell(row, key_hash)]);
  return depth_ == 0 ? 0 : best;
}

std::uint64_t CountMinSketch::estimate(std::string_view key) const {
  return estimate(stats::fnv1a64(key));
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_)
    throw std::invalid_argument("CountMinSketch::merge: shape mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

}  // namespace jsoncdn::stream
