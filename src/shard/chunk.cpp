#include "shard/chunk.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "logs/jlog.h"
#include "shard/varint.h"

namespace jsoncdn::shard {

namespace {

constexpr std::size_t kMethodCount = 7;  // http::Method enumerator count

// Zone-map accumulators. A zero-row chunk leaves everything at the
// documented {0, 0} defaults.
struct ZoneMap {
  double min_ts = 0.0;
  double max_ts = 0.0;
  std::array<SymbolRange, kSymbolColumns> symbols{};

  void observe_ts(double t, bool first) noexcept {
    if (first || t < min_ts) min_ts = t;
    if (first || t > max_ts) max_ts = t;
  }
  void observe_sym(std::size_t col, std::uint32_t sym, bool first) noexcept {
    auto& r = symbols[col];
    if (first || sym < r.min_sym) r.min_sym = sym;
    if (first || sym > r.max_sym) r.max_sym = sym;
  }
  // Bit-pattern compare: encode and decode run the identical fold over the
  // identical values, so even NaN timestamps agree bit-for-bit.
  [[nodiscard]] bool matches(const ChunkMeta& meta) const noexcept {
    if (std::bit_cast<std::uint64_t>(min_ts) !=
            std::bit_cast<std::uint64_t>(meta.min_ts) ||
        std::bit_cast<std::uint64_t>(max_ts) !=
            std::bit_cast<std::uint64_t>(meta.max_ts)) {
      return false;
    }
    for (std::size_t c = 0; c < kSymbolColumns; ++c) {
      if (symbols[c].min_sym != meta.symbols[c].min_sym ||
          symbols[c].max_sym != meta.symbols[c].max_sym) {
        return false;
      }
    }
    return true;
  }
};

void encode_delta_u64(std::string& out, const std::uint64_t* values,
                      std::uint32_t begin, std::uint32_t end) {
  DeltaEncoder enc;
  for (std::uint32_t i = begin; i < end; ++i) enc.put(out, values[i]);
}

// Decodes `n` zigzag-delta varints, appending to `col` through `convert`,
// which range-checks and narrows (or throws via jlog_corrupt). Varints are
// bulk-decoded into `scratch` (reused across columns) so the hot byte loop
// runs without per-value virtual position plumbing; the convert pass over
// the dense u64 array then auto-vectorizes for the trivial conversions.
template <typename T, typename Convert>
void decode_delta_column(std::string_view payload, std::size_t& pos,
                         std::uint32_t n, std::vector<T>& col,
                         std::vector<std::uint64_t>& scratch,
                         const std::string& path, Convert convert) {
  scratch.resize(n);
  DeltaDecoder dec;
  if (!dec.get_n(payload, pos, scratch.data(), n)) {
    logs::jlog_corrupt(path, "truncated chunk column");
  }
  col.reserve(col.size() + n);
  for (std::uint32_t i = 0; i < n; ++i) col.push_back(convert(scratch[i]));
}

template <typename E>
void encode_enum3(std::string& out, const std::vector<E>& col,
                  std::uint32_t begin, std::uint32_t end) {
  std::vector<std::uint8_t> packed;
  packed.reserve(end - begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    packed.push_back(static_cast<std::uint8_t>(col[i]));
  }
  pack3(out, packed.data(), packed.size());
}

template <typename E>
void decode_enum3(std::string_view payload, std::size_t& pos, std::uint32_t n,
                  std::vector<E>& col, std::size_t limit,
                  const std::string& path, const char* what) {
  std::vector<std::uint8_t> packed(n);
  if (!unpack3(payload, pos, packed.data(), n)) {
    logs::jlog_corrupt(path, "truncated chunk enum column");
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (packed[i] >= limit) logs::jlog_corrupt(path, what);
    col.push_back(static_cast<E>(packed[i]));
  }
}

}  // namespace

void write_chunk_meta(logs::BinaryWriter& out, const ChunkMeta& meta) {
  out.pod<std::uint64_t>(meta.offset);
  out.pod<std::uint64_t>(meta.payload_bytes);
  out.pod<std::uint64_t>(meta.checksum);
  out.pod<std::uint32_t>(meta.row_count);
  out.pod<double>(meta.min_ts);
  out.pod<double>(meta.max_ts);
  for (const auto& r : meta.symbols) {
    out.pod<std::uint32_t>(r.min_sym);
    out.pod<std::uint32_t>(r.max_sym);
  }
}

ChunkMeta read_chunk_meta(logs::BinaryReader& in) {
  ChunkMeta meta;
  meta.offset = in.pod<std::uint64_t>();
  meta.payload_bytes = in.pod<std::uint64_t>();
  meta.checksum = in.pod<std::uint64_t>();
  meta.row_count = in.pod<std::uint32_t>();
  meta.min_ts = in.pod<double>();
  meta.max_ts = in.pod<double>();
  for (auto& r : meta.symbols) {
    r.min_sym = in.pod<std::uint32_t>();
    r.max_sym = in.pod<std::uint32_t>();
  }
  return meta;
}

ChunkMeta ChunkCodec::encode(const logs::LogTable& table, std::uint32_t begin,
                             std::uint32_t end, std::string& out) {
  const std::size_t start = out.size();
  ChunkMeta meta;
  meta.row_count = end - begin;

  ZoneMap zone;
  {
    DeltaEncoder enc;
    for (std::uint32_t i = begin; i < end; ++i) {
      zone.observe_ts(table.ts_[i], i == begin);
      enc.put(out, std::bit_cast<std::uint64_t>(table.ts_[i]));
    }
  }
  encode_enum3(out, table.method_, begin, end);
  encode_enum3(out, table.cache_, begin, end);
  {
    DeltaEncoder enc;
    for (std::uint32_t i = begin; i < end; ++i) {
      enc.put(out, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(table.status_[i])));
    }
  }
  encode_delta_u64(out, table.resp_bytes_.data(), begin, end);
  encode_delta_u64(out, table.req_bytes_.data(), begin, end);
  {
    DeltaEncoder enc;
    for (std::uint32_t i = begin; i < end; ++i) {
      enc.put(out, static_cast<std::uint64_t>(table.edge_[i]));
    }
  }
  const std::vector<logs::StringInterner::Symbol>* sym_cols[kSymbolColumns] = {
      &table.url_,    &table.client_id_, &table.ua_,
      &table.domain_, &table.ctype_,     &table.client_,
  };
  for (std::size_t c = 0; c < kSymbolColumns; ++c) {
    DeltaEncoder enc;
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t sym = (*sym_cols[c])[i];
      zone.observe_sym(c, sym, i == begin);
      enc.put(out, static_cast<std::uint64_t>(sym));
    }
  }

  meta.min_ts = zone.min_ts;
  meta.max_ts = zone.max_ts;
  meta.symbols = zone.symbols;
  meta.payload_bytes = out.size() - start;
  meta.checksum =
      payload_checksum(std::string_view(out).substr(start));
  return meta;
}

void ChunkCodec::decode(std::string_view payload, const ChunkMeta& meta,
                        logs::LogTable& table, const std::string& path) {
  if (payload.size() != meta.payload_bytes) {
    logs::jlog_corrupt(path, "chunk payload length mismatch");
  }
  if (payload_checksum(payload) != meta.checksum) {
    logs::jlog_corrupt(path, "chunk payload checksum mismatch");
  }
  const std::uint32_t n = meta.row_count;
  const std::size_t first = table.size();
  std::size_t pos = 0;
  std::vector<std::uint64_t> scratch;

  decode_delta_column(payload, pos, n, table.ts_, scratch, path,
                      [](std::uint64_t v) { return std::bit_cast<double>(v); });
  decode_enum3(payload, pos, n, table.method_, kMethodCount, path,
               "method value out of range");
  decode_enum3(payload, pos, n, table.cache_, logs::kCacheStatusCount, path,
               "cache status out of range");
  decode_delta_column(
      payload, pos, n, table.status_, scratch, path, [&](std::uint64_t v) {
        const auto s = static_cast<std::int64_t>(v);
        if (s < std::numeric_limits<std::int32_t>::min() ||
            s > std::numeric_limits<std::int32_t>::max()) {
          logs::jlog_corrupt(path, "status value out of range");
        }
        return static_cast<std::int32_t>(s);
      });
  decode_delta_column(payload, pos, n, table.resp_bytes_, scratch, path,
                      [](std::uint64_t v) { return v; });
  decode_delta_column(payload, pos, n, table.req_bytes_, scratch, path,
                      [](std::uint64_t v) { return v; });
  decode_delta_column(
      payload, pos, n, table.edge_, scratch, path, [&](std::uint64_t v) {
        if (v > 0xffffffffULL) {
          logs::jlog_corrupt(path, "edge id out of range");
        }
        return static_cast<std::uint32_t>(v);
      });

  struct SymCol {
    std::vector<logs::StringInterner::Symbol>* col;
    const logs::StringInterner* dict;
  };
  const SymCol sym_cols[kSymbolColumns] = {
      {&table.url_, &table.url_dict_},
      {&table.client_id_, &table.client_id_dict_},
      {&table.ua_, &table.ua_dict_},
      {&table.domain_, &table.domain_dict_},
      {&table.ctype_, &table.ctype_dict_},
      {&table.client_, &table.client_dict_},
  };
  for (const auto& sc : sym_cols) {
    decode_delta_column(
        payload, pos, n, *sc.col, scratch, path, [&](std::uint64_t v) {
          if (v >= sc.dict->size()) {
            logs::jlog_corrupt(path, "symbol out of dictionary range");
          }
          return static_cast<std::uint32_t>(v);
        });
  }
  if (pos != payload.size()) {
    logs::jlog_corrupt(path, "trailing bytes in chunk payload");
  }

  // Recompute the zone map from the decoded rows and hold the directory to
  // it — pruning must be able to trust what it skipped.
  ZoneMap zone;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t row = first + i;
    zone.observe_ts(table.ts_[row], i == 0);
    for (std::size_t c = 0; c < kSymbolColumns; ++c) {
      zone.observe_sym(c, (*sym_cols[c].col)[row], i == 0);
    }
  }
  if (!zone.matches(meta)) {
    logs::jlog_corrupt(path, "zone map does not match chunk contents");
  }
}

void ChunkCodec::write_dictionaries(logs::BinaryWriter& out,
                                    const logs::LogTable& table) {
  logs::write_jlog_dictionary(out, table.url_dict_);
  logs::write_jlog_dictionary(out, table.client_id_dict_);
  logs::write_jlog_dictionary(out, table.ua_dict_);
  logs::write_jlog_dictionary(out, table.domain_dict_);
  logs::write_jlog_dictionary(out, table.ctype_dict_);
  logs::write_jlog_dictionary(out, table.client_dict_);
}

void ChunkCodec::read_dictionaries(logs::BinaryReader& in,
                                   logs::LogTable& table,
                                   const std::string& path) {
  logs::read_jlog_dictionary(in, table.url_dict_, path);
  logs::read_jlog_dictionary(in, table.client_id_dict_, path);
  logs::read_jlog_dictionary(in, table.ua_dict_, path);
  logs::read_jlog_dictionary(in, table.domain_dict_, path);
  logs::read_jlog_dictionary(in, table.ctype_dict_, path);
  logs::read_jlog_dictionary(in, table.client_dict_, path);
}

}  // namespace jsoncdn::shard
