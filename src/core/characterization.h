// §4 aggregations: everything the paper reports when "Characterizing JSON
// Traffic" — the Fig. 3 device breakdown, browser vs non-browser shares,
// GET/POST request mix, response cacheability, the JSON-vs-HTML size
// comparison, and the Fig. 4 per-industry domain cacheability heatmap.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "logs/dataset.h"
#include "logs/table.h"
#include "stats/descriptive.h"

namespace jsoncdn::core {

// ---- Traffic source (Fig. 3) -------------------------------------------

struct SourceBreakdown {
  // Request counts per device type, and over distinct UA strings.
  std::array<std::uint64_t, 4> requests_by_device{};   // index = DeviceType
  std::array<std::uint64_t, 4> ua_strings_by_device{};
  std::uint64_t total_requests = 0;
  std::uint64_t total_ua_strings = 0;
  std::uint64_t browser_requests = 0;
  std::uint64_t mobile_browser_requests = 0;
  std::uint64_t missing_ua_requests = 0;

  [[nodiscard]] double device_share(http::DeviceType d) const noexcept;
  [[nodiscard]] double ua_string_share(http::DeviceType d) const noexcept;
  [[nodiscard]] double browser_share() const noexcept;
  [[nodiscard]] double non_browser_share() const noexcept;
  [[nodiscard]] double mobile_browser_share() const noexcept;

  // Adds another shard's counters (shard-then-merge parallel aggregation).
  // Caller must ensure UA-string counters are disjoint across shards —
  // characterize_source merges the distinct-UA sets before counting them.
  void merge(const SourceBreakdown& other) noexcept;
};

// `threads`: 0 = auto (JSONCDN_THREADS env, else hardware_concurrency).
// All characterize_* aggregations shard the record range across workers and
// merge per-shard accumulators in shard order; counts are integers, so the
// result is bit-identical for any thread count.
[[nodiscard]] SourceBreakdown characterize_source(const logs::Dataset& ds,
                                                  std::size_t threads = 1);
// Columnar variant: device classification runs once per distinct interned UA
// symbol instead of per distinct string per shard. Bit-identical output.
[[nodiscard]] SourceBreakdown characterize_source(const logs::TableView& view,
                                                  std::size_t threads = 1);

// ---- Request type ---------------------------------------------------------

struct MethodMix {
  std::uint64_t get = 0;
  std::uint64_t post = 0;
  std::uint64_t other = 0;
  std::uint64_t total = 0;

  [[nodiscard]] double get_share() const noexcept;
  // "96% of the remaining requests are POST": POST share of non-GET.
  [[nodiscard]] double post_share_of_non_get() const noexcept;
  [[nodiscard]] double upload_share() const noexcept;  // POST+PUT+PATCH

  void merge(const MethodMix& other) noexcept;
};

[[nodiscard]] MethodMix characterize_methods(const logs::Dataset& ds,
                                             std::size_t threads = 1);
[[nodiscard]] MethodMix characterize_methods(const logs::TableView& view,
                                             std::size_t threads = 1);

// ---- Response type --------------------------------------------------------

struct CacheabilityStats {
  std::uint64_t cacheable = 0;    // config allows caching (HIT or MISS)
  std::uint64_t uncacheable = 0;  // NOCACHE
  std::uint64_t hits = 0;

  [[nodiscard]] double uncacheable_share() const noexcept;
  [[nodiscard]] double hit_share() const noexcept;

  void merge(const CacheabilityStats& other) noexcept;
};

// ERROR records are excluded (an origin failure says nothing about the
// customer's cacheability config); STALE counts as a cacheable hit — the
// bytes came from CDN storage. The streaming counterpart applies the same
// rules, so batch and streaming agree exactly.
[[nodiscard]] CacheabilityStats characterize_cacheability(
    const logs::Dataset& ds, std::size_t threads = 1);
[[nodiscard]] CacheabilityStats characterize_cacheability(
    const logs::TableView& view, std::size_t threads = 1);

// ---- Response status / error share ---------------------------------------

// HTTP status mix of a log — all zero except ok_2xx on a fault-free run.
// With fault injection on, this is the error-share view the resilience
// experiments report against.
struct StatusBreakdown {
  std::uint64_t total = 0;
  std::uint64_t ok_2xx = 0;
  std::uint64_t redirect_3xx = 0;
  std::uint64_t client_error_4xx = 0;
  std::uint64_t server_error_5xx = 0;     // includes 504
  std::uint64_t gateway_timeout_504 = 0;  // subset of server_error_5xx
  std::uint64_t stale_served = 0;         // 200s served via stale-if-error
  std::uint64_t error_cache_status = 0;   // records logged ERROR
  std::uint64_t shed = 0;                 // records logged SHED (load shed)
  std::uint64_t throttled = 0;            // records logged THROTTLED (429)

  // Share of requests answered with a server error.
  [[nodiscard]] double error_share() const noexcept;
  // Share of requests a resilience mechanism visibly absorbed (stale serves).
  [[nodiscard]] double absorbed_share() const noexcept;
  // Share of requests rejected by overload protection (shed + throttled).
  [[nodiscard]] double rejected_share() const noexcept;

  void merge(const StatusBreakdown& other) noexcept;
};

[[nodiscard]] StatusBreakdown characterize_status(const logs::Dataset& ds,
                                                  std::size_t threads = 1);
[[nodiscard]] StatusBreakdown characterize_status(const logs::TableView& view,
                                                  std::size_t threads = 1);

// JSON vs HTML response sizes over an (unfiltered) dataset.
struct SizeComparison {
  stats::Summary json;
  stats::Summary html;
  // json_pXX / html_pXX; the paper reports JSON 24% / 87% smaller at the
  // median / 75th percentile, i.e. ratios ~0.76 / ~0.13.
  [[nodiscard]] double p50_ratio() const noexcept;
  [[nodiscard]] double p75_ratio() const noexcept;
};

[[nodiscard]] SizeComparison compare_sizes(const logs::Dataset& ds,
                                           std::size_t threads = 1);
// Columnar variant: content classification runs once per distinct interned
// content-type symbol, then rows reduce over a precomputed class column.
[[nodiscard]] SizeComparison compare_sizes(const logs::TableView& view,
                                           std::size_t threads = 1);

// ---- Domain cacheability heatmap (Fig. 4) -------------------------------

// The industry label comes from an external categorization service in the
// paper; callers supply the lookup (tests/benches use the workload catalog's
// ground truth as that service).
using IndustryLookup = std::function<std::string(std::string_view domain)>;

struct DomainCacheability {
  std::string domain;
  std::string category;
  std::uint64_t requests = 0;
  double cacheable_share = 0.0;  // share of the domain's requests cacheable
};

// The industry lookup is invoked serially (once per distinct domain, after
// the sharded per-record aggregation), so it need not be thread-safe.
[[nodiscard]] std::vector<DomainCacheability> domain_cacheability(
    const logs::Dataset& ds, const IndustryLookup& industry_of,
    std::size_t threads = 1);
// Columnar variant: shards accumulate into flat per-domain-symbol arrays
// (no string hashing or tree walks); output order is by domain string, same
// as the Dataset overload's ordered-map iteration.
[[nodiscard]] std::vector<DomainCacheability> domain_cacheability(
    const logs::TableView& view, const IndustryLookup& industry_of,
    std::size_t threads = 1);

struct CacheabilityHeatmap {
  std::vector<std::string> categories;      // row labels
  std::size_t bins = 10;                    // columns over [0, 1]
  // density[row][col]: share of the category's domains whose cacheable
  // share falls in that bin. Bin 0 contains exactly-0 ("never cache"),
  // the last bin contains exactly-1 ("always cache").
  std::vector<std::vector<double>> density;
  double never_cache_domain_share = 0.0;    // across all domains
  double always_cache_domain_share = 0.0;
};

[[nodiscard]] CacheabilityHeatmap cacheability_heatmap(
    const std::vector<DomainCacheability>& domains, std::size_t bins = 10);

}  // namespace jsoncdn::core
