#include "workload/app_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace jsoncdn::workload {

namespace {

// App endpoint vocabulary (the manifest is always "home").
constexpr const char* kEndpointNames[] = {
    "home",    "feed",     "article", "detail",  "media",   "profile",
    "search",  "comments", "related", "config",  "session", "recommend",
    "gallery", "summary",  "prices",  "history",
};

}  // namespace

AppGraph::AppGraph(const DomainSpec& domain, ObjectCatalog& catalog,
                   const AppGraphParams& params, stats::Rng rng)
    : domain_(domain.name) {
  if (params.n_endpoints < 2)
    throw std::invalid_argument("AppGraph: need at least 2 endpoints");
  if (params.id_space == 0)
    throw std::invalid_argument("AppGraph: id_space must be >= 1");
  if (params.top_transition_lo > params.top_transition_hi ||
      params.top_transition_hi >= 1.0)
    throw std::invalid_argument("AppGraph: bad top_transition bounds");
  if (params.transition_decay <= 0.0 || params.transition_decay >= 1.0)
    throw std::invalid_argument("AppGraph: transition_decay outside (0,1)");

  auto json_params = size_params(http::ContentClass::kJson);
  json_params.log_mean += params.json_size_log_shift;
  stats::BodySizeSampler json_sizes(json_params);
  const std::string base = "https://" + domain_ + "/app/v1/";
  const std::size_t n = params.n_endpoints;
  constexpr std::size_t kNameCount = std::size(kEndpointNames);

  endpoints_.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    Endpoint ep;
    std::string name{kEndpointNames[e % kNameCount]};
    if (e >= kNameCount) name += std::to_string(e / kNameCount);
    ep.path_base = base + name;
    // The manifest (endpoint 0) is always a plain GET; others may be
    // parameterized or be upload (POST) endpoints.
    if (e > 0) {
      ep.parameterized = rng.bernoulli(params.parameterized_share);
      if (!ep.parameterized && rng.bernoulli(params.post_endpoint_share)) {
        // Mostly POST; the occasional REST-ful PUT keeps the method mix
        // honest (the paper: 96% of non-GET requests are POST).
        ep.method = rng.bernoulli(0.2) ? http::Method::kPut
                                       : http::Method::kPost;
      }
    }

    const std::size_t url_count = ep.parameterized ? params.id_space : 1;
    ep.urls.reserve(url_count);
    for (std::size_t id = 0; id < url_count; ++id) {
      ObjectSpec obj;
      obj.url = ep.parameterized ? ep.path_base + "/" + std::to_string(1000 + id)
                                 : ep.path_base;
      obj.domain = domain_;
      obj.content = http::ContentClass::kJson;
      obj.content_type = content_type_for(obj.content);
      // POST endpoints are uncacheable by nature; GETs follow the domain's
      // cacheability share.
      obj.cacheable = ep.method == http::Method::kGet &&
                      rng.bernoulli(domain.cacheable_share);
      obj.ttl_seconds = 600.0;
      obj.body_bytes = json_sizes.sample(rng);
      catalog.add(obj);
      ep.urls.push_back(std::move(obj.url));
    }
    if (ep.parameterized) {
      stats::ZipfSampler zipf(params.id_space, params.id_zipf_s);
      ep.id_weights.resize(params.id_space);
      for (std::size_t id = 0; id < params.id_space; ++id)
        ep.id_weights[id] = zipf.pmf(id);
    }
    endpoints_.push_back(std::move(ep));
  }

  // Row-stochastic transition matrix: for each template, order the other
  // templates randomly, give the first U(lo,hi) mass, spread a geometric
  // "mid" group over the next few, and flatten the rest. Self-transitions
  // are allowed only for parameterized templates (article -> next article is
  // a real app pattern).
  transitions_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t from = 0; from < n; ++from) {
    std::vector<std::size_t> targets;
    for (std::size_t to = 0; to < n; ++to) {
      if (to == from && !endpoints_[from].parameterized) continue;
      targets.push_back(to);
    }
    std::shuffle(targets.begin(), targets.end(), rng.engine());
    if (targets.size() == 1) {
      transitions_[from][targets[0]] = 1.0;
      continue;
    }
    const double top =
        rng.uniform(params.top_transition_lo, params.top_transition_hi);
    transitions_[from][targets[0]] = top;

    const std::size_t mid_count =
        std::min(params.mid_targets, targets.size() - 1);
    const std::size_t flat_count = targets.size() - 1 - mid_count;
    const double mid_mass =
        (1.0 - top) * (flat_count > 0 ? params.mid_share : 1.0);
    const double flat_mass = 1.0 - top - mid_mass;

    // Geometric weights inside the mid group, normalized exactly.
    double geo_norm = 0.0;
    for (std::size_t k = 0; k < mid_count; ++k)
      geo_norm += std::pow(params.transition_decay, static_cast<double>(k));
    for (std::size_t k = 0; k < mid_count; ++k) {
      transitions_[from][targets[1 + k]] =
          mid_mass *
          std::pow(params.transition_decay, static_cast<double>(k)) / geo_norm;
    }
    for (std::size_t k = 0; k < flat_count; ++k) {
      transitions_[from][targets[1 + mid_count + k]] =
          flat_mass / static_cast<double>(flat_count);
    }
  }
}

std::size_t AppGraph::next_template(std::size_t current,
                                    stats::Rng& rng) const {
  if (current >= endpoints_.size())
    throw std::out_of_range("AppGraph::next_template");
  return stats::weighted_choice(transitions_[current], rng);
}

const std::string& AppGraph::instantiate(std::size_t tmpl,
                                         stats::Rng& rng) const {
  if (tmpl >= endpoints_.size())
    throw std::out_of_range("AppGraph::instantiate");
  const auto& ep = endpoints_[tmpl];
  if (!ep.parameterized) return ep.urls.front();
  return ep.urls[stats::weighted_choice(ep.id_weights, rng)];
}

http::Method AppGraph::method_of(std::size_t tmpl) const {
  if (tmpl >= endpoints_.size()) throw std::out_of_range("AppGraph::method_of");
  return endpoints_[tmpl].method;
}

bool AppGraph::is_parameterized(std::size_t tmpl) const {
  if (tmpl >= endpoints_.size())
    throw std::out_of_range("AppGraph::is_parameterized");
  return endpoints_[tmpl].parameterized;
}

const std::vector<std::string>& AppGraph::urls_of(std::size_t tmpl) const {
  if (tmpl >= endpoints_.size()) throw std::out_of_range("AppGraph::urls_of");
  return endpoints_[tmpl].urls;
}

double AppGraph::oracle_top1_template_accuracy() const {
  // Stationary distribution by power iteration (rows are well-conditioned;
  // 200 iterations is far past convergence for n <= a few dozen).
  const std::size_t n = endpoints_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int iter = 0; iter < 200; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        next[j] += pi[i] * transitions_[i][j];
    pi.swap(next);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += pi[i] * *std::max_element(transitions_[i].begin(),
                                     transitions_[i].end());
  }
  return acc;
}

}  // namespace jsoncdn::workload
