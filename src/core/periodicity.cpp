#include "core/periodicity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/period_detector.h"
#include "core/periodicity_internal.h"
#include "http/method.h"
#include "stats/autocorrelation.h"
#include "stats/fft.h"
#include "stats/hash.h"
#include "stats/parallel.h"
#include "stats/timeseries.h"

namespace jsoncdn::core {

PeriodicityDetector::PeriodicityDetector(const DetectorParams& params)
    : params_(params) {
  if (params.sample_interval <= 0.0)
    throw std::invalid_argument("PeriodicityDetector: sample_interval <= 0");
  if (params.permutations < 2)
    throw std::invalid_argument("PeriodicityDetector: permutations < 2");
  if (params.max_signal_samples < 16)
    throw std::invalid_argument("PeriodicityDetector: max_signal_samples < 16");
  if (params.period_match_tolerance <= 0.0 ||
      params.period_match_tolerance >= 1.0)
    throw std::invalid_argument(
        "PeriodicityDetector: tolerance outside (0,1)");
  if (params.samples_per_event < 4)
    throw std::invalid_argument("PeriodicityDetector: samples_per_event < 4");
  if (params.min_cycles < 2.0)
    throw std::invalid_argument("PeriodicityDetector: min_cycles < 2");
}

bool PeriodicityDetector::periods_match(double a, double b) const noexcept {
  return detail::relative_periods_match(a, b, params_.period_match_tolerance);
}

namespace detail {

BinnedFlow bin_flow(const DetectorParams& params,
                    std::span<const double> times,
                    std::vector<double>& signal) {
  BinnedFlow out;
  if (times.size() < params.min_requests) return out;
  const double t0 = times.front();
  const double t1 = times.back();
  const double span = t1 - t0;
  if (span <= params.sample_interval * 4.0) return out;
  out.span = span;

  // Effective bin width: the paper's 1 s, widened when the flow spans so
  // long that the signal would exceed the sample cap — or the density cap:
  // n events never need more than samples_per_event * n bins.
  const std::size_t sample_cap = std::min(
      params.max_signal_samples,
      std::max<std::size_t>(256, stats::next_pow2(params.samples_per_event *
                                                  times.size())));
  const double dt = std::max(params.sample_interval,
                             span / static_cast<double>(sample_cap));
  out.dt = dt;

  stats::bin_events(times, t0, t1 + dt, dt, signal);
  // A period must repeat min_cycles times within the span to be trusted, so
  // lags beyond span/min_cycles are not considered.
  const auto max_lag = static_cast<std::size_t>(
      std::floor(span / params.min_cycles / dt));
  if (max_lag < 2) return out;
  out.max_lag = max_lag;
  out.usable = true;
  return out;
}

FlowAnalysis analyze_signal(const DetectorParams& params,
                            std::span<const double> signal, double dt,
                            double span, std::size_t max_lag,
                            stats::Rng& rng, DetectScratch& scratch) {
  FlowAnalysis out;
  out.dt = dt;
  out.usable = true;

  // One fused FFT pass yields both the ACF and the periodogram.
  stats::spectral_analysis(signal, max_lag, scratch.workspace,
                           scratch.spectral);
  const auto& spec = scratch.spectral;
  const auto& acf = spec.acf;

  // --- Permutation null model (steps 2-3) --------------------------------
  // Shuffling the binned signal preserves the count distribution (hence the
  // rate) while destroying all temporal structure — the null model of
  // Vlachos et al. Note gap-shuffling would NOT work: a clean periodic flow
  // has near-constant gaps, so any gap order reproduces the same periodic
  // signal and the flow would refute its own significance.
  //
  // Early termination (exact): detection requires the observed maxima to
  // exceed the "(x-1)th largest" null maxima — the second largest when
  // sorted ascending. As soon as two null maxima exceed an observed
  // maximum, that threshold is unreachable and the flow is aperiodic; no
  // further permutations can change the outcome. Aperiodic flows (the vast
  // majority) therefore cost only a handful of FFTs.
  const double observed_acf_max = max_acf_peak(acf);
  const double observed_power_max = max_power(spec.pgram_power);
  auto& null_acf_max = scratch.null_acf_max;
  auto& null_power_max = scratch.null_power_max;
  null_acf_max.clear();
  null_power_max.clear();
  null_acf_max.reserve(params.permutations);
  null_power_max.reserve(params.permutations);
  std::size_t acf_exceed = 0;
  std::size_t power_exceed = 0;
  auto& shuffled = scratch.shuffled;
  shuffled.assign(signal.begin(), signal.end());
  for (std::size_t p = 0; p < params.permutations; ++p) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    stats::spectral_analysis(shuffled, max_lag, scratch.workspace,
                             scratch.null_spectral);
    const auto& nspec = scratch.null_spectral;
    const double a = max_acf_peak(nspec.acf);
    const double w = max_power(nspec.pgram_power);
    null_acf_max.push_back(a);
    null_power_max.push_back(w);
    if (a >= observed_acf_max) ++acf_exceed;
    if (w >= observed_power_max) ++power_exceed;
    if (acf_exceed >= 2 || power_exceed >= 2) return out;  // cannot pass
  }
  // "(x-1)th largest" == second largest when sorted ascending: index x-2.
  std::sort(null_acf_max.begin(), null_acf_max.end());
  std::sort(null_power_max.begin(), null_power_max.end());
  out.acf_threshold = null_acf_max[params.permutations - 2];
  out.power_threshold = null_power_max[params.permutations - 2];
  out.significant = true;

  // --- Line up periodogram hints with ACF peaks (step 4) -----------------
  const auto peaks = stats::acf_peaks(acf);
  std::vector<std::size_t> candidates;
  for (std::size_t k = 0; k < spec.pgram_power.size(); ++k) {
    if (spec.pgram_power[k] > out.power_threshold) candidates.push_back(k);
  }

  // A significant spectral line at frequency f licenses periods near any
  // multiple m/f of the corresponding period: in multi-client aggregates the
  // harmonics of the true period routinely carry more (and sometimes the
  // only significant) spectral power, while the fundamental shows up as the
  // dominant ACF peak at a multiple of the harmonic's period.
  const double max_period = span / params.min_cycles;
  std::unordered_map<std::size_t, double> power_of_lag;
  for (const auto k : candidates) {
    const double base_period = spec.pgram_period_samples(k) * dt;
    if (base_period < 2.0 * dt) continue;
    for (double period = base_period; period <= max_period;
         period += base_period) {
      for (const auto lag : peaks) {
        const double lag_period = static_cast<double>(lag) * dt;
        if (!relative_periods_match(lag_period, period,
                                    params.period_match_tolerance))
          continue;
        if (acf[lag] <= out.acf_threshold) continue;
        auto [it, inserted] =
            power_of_lag.try_emplace(lag, spec.pgram_power[k]);
        if (!inserted) it->second = std::max(it->second, spec.pgram_power[k]);
      }
    }
  }
  out.matches.reserve(power_of_lag.size());
  for (const auto& [lag, power] : power_of_lag) {
    out.matches.push_back({lag, acf[lag], power});
  }
  std::sort(out.matches.begin(), out.matches.end(),
            [](const FlowAnalysis::Match& a, const FlowAnalysis::Match& b) {
              return a.value > b.value;
            });
  return out;
}

void pick_fundamentals(const FlowAnalysis& analysis, double tolerance,
                       std::size_t max_periods,
                       std::vector<PeriodDetection>& out) {
  // The true period and its multiples all carry near-equal ACF peaks; a
  // fundamental is the smallest matched lag whose peak is comparable
  // (>= 0.5x) to the strongest remaining peak. Binning can split a
  // fundamental's peak across two adjacent lags (a non-integer period in
  // samples costs up to half the peak), while spurious aggregate cross-term
  // peaks sit far below half of a genuine period's peak. Each accepted
  // fundamental absorbs its near-multiples so a second *distinct* period —
  // not a harmonic family member — can surface next.
  std::vector<FlowAnalysis::Match> remaining = analysis.matches;
  while (!remaining.empty() && out.size() < max_periods) {
    const double vmax = remaining.front().value;
    const FlowAnalysis::Match* best = nullptr;
    for (const auto& m : remaining) {
      if (m.value < 0.5 * vmax) continue;
      if (best == nullptr || m.lag < best->lag) best = &m;
    }
    PeriodDetection det;
    det.periodic = true;
    det.period_seconds = static_cast<double>(best->lag) * analysis.dt;
    det.acf_peak_value = best->value;
    det.periodogram_power = best->power;
    det.acf_threshold = analysis.acf_threshold;
    det.power_threshold = analysis.power_threshold;
    const double accepted = det.period_seconds;
    out.push_back(det);

    // Drop this period and everything that is a near-multiple of it.
    std::erase_if(remaining, [&](const FlowAnalysis::Match& m) {
      const double period = static_cast<double>(m.lag) * analysis.dt;
      const double ratio = period / accepted;
      const double nearest = std::max(1.0, std::round(ratio));
      return std::abs(ratio - nearest) / nearest <= tolerance;
    });
  }
}

}  // namespace detail

PeriodDetection PeriodicityDetector::detect(std::span<const double> times,
                                            stats::Rng& rng) const {
  DetectScratch scratch;
  return detect(times, rng, scratch);
}

PeriodDetection PeriodicityDetector::detect(std::span<const double> times,
                                            stats::Rng& rng,
                                            DetectScratch& scratch) const {
  const auto all = detect_all(times, rng, 1, scratch);
  if (!all.empty()) return all.front();
  PeriodDetection out;
  return out;
}

std::vector<PeriodDetection> PeriodicityDetector::detect_all(
    std::span<const double> times, stats::Rng& rng,
    std::size_t max_periods) const {
  DetectScratch scratch;
  return detect_all(times, rng, max_periods, scratch);
}

std::vector<PeriodDetection> PeriodicityDetector::detect_all(
    std::span<const double> times, stats::Rng& rng, std::size_t max_periods,
    DetectScratch& scratch) const {
  std::vector<PeriodDetection> out;
  const auto binned = detail::bin_flow(params_, times, scratch.signal);
  if (!binned.usable) return out;
  const auto analysis =
      detail::analyze_signal(params_, scratch.signal, binned.dt, binned.span,
                             binned.max_lag, rng, scratch);
  if (analysis.matches.empty()) return out;
  detail::pick_fundamentals(analysis, params_.period_match_tolerance,
                            max_periods, out);
  return out;
}

namespace {

// The per-object-flow unit of parallel work: the object flow's detection
// plus all of its client flows. Randomness is forked from the root seed by
// (url, client) keys, so the result is independent of which worker runs it
// and of the order flows are processed in.
ObjectPeriodicity analyze_object_flow(const PeriodDetector& detector,
                                      const logs::ObjectFlow& flow,
                                      const stats::Rng& root,
                                      PeriodDetector::Scratch& scratch) {
  ObjectPeriodicity obj;
  obj.url = flow.url;
  obj.total_requests = flow.total_requests;
  obj.uncacheable_share = flow.uncacheable_share;
  obj.upload_share = flow.upload_share;

  const std::size_t max_det = detector.max_detections();

  // Independent, order-insensitive randomness per flow.
  stats::Rng obj_rng = root.fork(stats::fnv1a64(flow.url));
  const auto obj_detections =
      detector.detect_all(flow.times, obj_rng, max_det, scratch);
  if (!obj_detections.empty()) {
    obj.object_periodic = obj_detections.front().periodic;
    obj.object_period_seconds = obj_detections.front().period_seconds;
    for (std::size_t i = 1; i < obj_detections.size(); ++i)
      obj.extra_periods.push_back(obj_detections[i].period_seconds);
  }

  for (const auto& cof : flow.clients) {
    ClientPeriodRecord rec;
    rec.client = cof.client;
    rec.requests = cof.times.size();
    stats::Rng client_rng =
        root.fork(stats::fnv1a64(cof.client, stats::fnv1a64(flow.url)));
    const auto detections =
        detector.detect_all(cof.times, client_rng, max_det, scratch);
    if (!detections.empty()) {
      rec.periodic = detections.front().periodic;
      rec.period_seconds = detections.front().period_seconds;
      for (std::size_t i = 1; i < detections.size(); ++i)
        rec.extra_periods.push_back(detections[i].period_seconds);
    }
    // A client matches the object when ANY of its detected periods agrees
    // with ANY of the object's. With a single-period strategy both lists
    // hold one period and this reduces to the original primary-vs-primary
    // check.
    if (obj.object_periodic && rec.periodic) {
      const auto matches_any = [&](double client_period) {
        if (detector.periods_match(client_period, obj.object_period_seconds))
          return true;
        for (const double p : obj.extra_periods)
          if (detector.periods_match(client_period, p)) return true;
        return false;
      };
      rec.matches_object = matches_any(rec.period_seconds);
      for (const double p : rec.extra_periods) {
        if (rec.matches_object) break;
        rec.matches_object = matches_any(p);
      }
    }
    if (rec.matches_object) {
      ++obj.periodic_client_count;
      obj.periodic_requests += rec.requests;
    }
    obj.clients.push_back(std::move(rec));
  }
  if (!obj.clients.empty()) {
    obj.periodic_client_share =
        static_cast<double>(obj.periodic_client_count) /
        static_cast<double>(obj.clients.size());
  }
  return obj;
}

// Shared driver: the whole analysis after flow extraction depends only on
// the ObjectFlow values, so the row (Dataset) and columnar (TableView)
// entry points below produce bit-identical reports by construction.
PeriodicityReport analyze_flows(const std::vector<logs::ObjectFlow>& flows,
                                std::size_t input_requests,
                                const PeriodicityConfig& config) {
  const auto detector = make_period_detector(config.strategy, config.detector);
  const stats::Rng root(config.seed);

  PeriodicityReport report;
  report.total_requests = config.total_requests_override > 0
                              ? config.total_requests_override
                              : input_requests;

  // Fan out one task per object flow with index-ordered placement; the
  // sequential merge below then visits objects in the same order as the
  // serial loop did, so the report is bit-identical for any thread count.
  stats::ThreadPool pool(config.threads);
  std::vector<ObjectPeriodicity> objects(flows.size());
  stats::parallel_for(
      pool, flows.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        const auto scratch = detector->make_scratch();
        for (std::size_t i = begin; i < end; ++i)
          objects[i] =
              analyze_object_flow(*detector, flows[i], root, *scratch);
      });

  std::uint64_t periodic_uncacheable_weight = 0;
  std::uint64_t periodic_upload_weight = 0;

  for (auto& obj : objects) {
    if (obj.object_periodic) {
      report.object_periods.push_back(obj.object_period_seconds);
      if (!obj.clients.empty())
        report.periodic_client_shares.push_back(obj.periodic_client_share);
    }
    report.periodic_requests += obj.periodic_requests;
    periodic_uncacheable_weight += static_cast<std::uint64_t>(
        std::llround(obj.uncacheable_share *
                     static_cast<double>(obj.periodic_requests)));
    periodic_upload_weight += static_cast<std::uint64_t>(
        std::llround(obj.upload_share *
                     static_cast<double>(obj.periodic_requests)));
    report.objects.push_back(std::move(obj));
  }

  if (report.total_requests > 0) {
    report.periodic_request_share =
        static_cast<double>(report.periodic_requests) /
        static_cast<double>(report.total_requests);
  }
  if (report.periodic_requests > 0) {
    report.periodic_uncacheable_share =
        static_cast<double>(periodic_uncacheable_weight) /
        static_cast<double>(report.periodic_requests);
    report.periodic_upload_share =
        static_cast<double>(periodic_upload_weight) /
        static_cast<double>(report.periodic_requests);
  }
  return report;
}

}  // namespace

PeriodicityReport analyze_periodicity(const logs::Dataset& ds,
                                      const PeriodicityConfig& config) {
  return analyze_flows(logs::extract_object_flows(ds, config.flow_filter),
                       ds.size(), config);
}

PeriodicityReport analyze_periodicity(const logs::TableView& view,
                                      const PeriodicityConfig& config) {
  return analyze_flows(logs::extract_object_flows(view, config.flow_filter),
                       view.size(), config);
}

}  // namespace jsoncdn::core
