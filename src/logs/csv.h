// Log (de)serialization as TSV — one record per line, tab-separated, with
// URL-style escaping of tabs/newlines inside fields. Edge servers in the
// simulator stream records through a LogWriter; analyses that want to work
// from files read them back with LogReader. Round-trip is lossless
// (property-tested).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "logs/dataset.h"
#include "logs/record.h"

namespace jsoncdn::logs {

// Header line identifying the column layout / format version.
[[nodiscard]] std::string_view log_header() noexcept;

// Serializes one record to a single line (no trailing newline).
[[nodiscard]] std::string to_line(const LogRecord& record);

// Decodes one escaped field back to its raw bytes: the exact inverse of the
// writer's escaping (%XX only). Deliberately NOT http::url_decode — form
// decoding also folds '+' to space, which would corrupt legitimate '+' bytes
// in UA strings like "Scrapy/2.11.0 (+https://scrapy.org)" and break joins
// against the truth sidecar's client keys.
[[nodiscard]] std::string unescape_field(std::string_view field);

// Parses one line. Returns nullopt on malformed input (wrong column count,
// non-numeric numerics, unknown enums) — malformed log lines are data errors,
// skipped and counted by the reader, never exceptions. A trailing '\r'
// (CRLF line ending) is tolerated; files without a final newline parse the
// last row like any other.
[[nodiscard]] std::optional<LogRecord> from_line(std::string_view line);

// Same, but on failure stores a short machine-readable reason (one of
// "column-count", "bad-timestamp", "bad-method", "bad-status",
// "bad-response-bytes", "bad-request-bytes", "bad-cache-status",
// "bad-edge-id") into *reason. Reasons are stable identifiers — the ingest
// report aggregates by them.
[[nodiscard]] std::optional<LogRecord> from_line(std::string_view line,
                                                 std::string* reason);

// One validated line with the string fields still *escaped*: views into the
// caller's line buffer, zero copies. This is the parse layer shared by
// from_line (which unescapes into an owning LogRecord) and the zero-copy
// columnar ingest (which unescapes straight into the interner, skipping the
// copy entirely when a field contains no escape bytes). Numeric and enum
// fields are fully validated and parsed.
struct LineFields {
  double timestamp = 0.0;
  std::string_view client_id;    // escaped
  std::string_view user_agent;   // escaped
  http::Method method = http::Method::kGet;
  std::string_view url;          // escaped
  std::string_view domain;       // escaped
  std::string_view content_type; // escaped
  int status = 200;
  std::uint64_t response_bytes = 0;
  std::uint64_t request_bytes = 0;
  CacheStatus cache_status = CacheStatus::kNotCacheable;
  std::uint32_t edge_id = 0;
};

// Parses one line into `out` (tolerating a trailing '\r'), applying exactly
// the validation order and failure reasons documented on from_line. Returns
// false and sets *reason (when non-null) on malformed input. Allocates only
// into *reason (a reused buffer amortizes that to zero).
[[nodiscard]] bool parse_line(std::string_view line, LineFields& out,
                              std::string* reason);

// How an ingest run treats malformed lines.
enum class ParseMode {
  kPermissive,  // skip, count, optionally quarantine — analysis proceeds
  kStrict,      // first malformed line throws with its line number
};

// Receives rejected lines during permissive ingestion, so corrupted input is
// preserved for inspection instead of silently dropped.
class QuarantineSink {
 public:
  virtual ~QuarantineSink() = default;
  virtual void quarantine(std::uint64_t line_number, std::string_view line,
                          std::string_view reason) = 0;
};

// Quarantine sink writing one TSV row per rejected line:
// <line_number>\t<reason>\t<raw line>.
class StreamQuarantine final : public QuarantineSink {
 public:
  explicit StreamQuarantine(std::ostream& out);
  void quarantine(std::uint64_t line_number, std::string_view line,
                  std::string_view reason) override;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
};

struct IngestOptions {
  ParseMode mode = ParseMode::kPermissive;
  // Non-owning; may be nullptr. Only consulted in permissive mode (strict
  // mode throws before anything could be quarantined).
  QuarantineSink* quarantine = nullptr;
  // Permissive-mode error budget: ingestion aborts (throws) once more than
  // this many lines have been rejected. Guards against feeding an analysis
  // a file that is mostly garbage.
  std::uint64_t max_malformed = UINT64_MAX;
};

// What an ingest run saw — the analyzer reports this as the ingest-error
// budget of the dataset it is about to characterize.
struct IngestReport {
  std::uint64_t lines = 0;      // every input line, incl. header/comments
  std::uint64_t records = 0;    // well-formed records accepted
  std::uint64_t malformed = 0;  // lines rejected
  bool header_seen = false;     // a "#jsoncdn-log" header line was present
  // reason identifier -> rejected-line count; deterministic iteration order.
  std::map<std::string, std::uint64_t> reasons;

  // Rejected share of data lines (header/comment lines excluded).
  [[nodiscard]] double error_share() const noexcept {
    const auto data_lines = records + malformed;
    return data_lines == 0 ? 0.0
                           : static_cast<double>(malformed) /
                                 static_cast<double>(data_lines);
  }
  void merge(const IngestReport& other);
};

// Renders the ingest report as a short plain-text block for tools.
[[nodiscard]] std::string render_ingest_report(const IngestReport& report);

// Streams records to an ostream, writing the header first.
class LogWriter {
 public:
  explicit LogWriter(std::ostream& out);
  void write(const LogRecord& record);
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

// Reads records from an istream; tolerates and counts malformed lines.
class LogReader {
 public:
  explicit LogReader(std::istream& in);
  // Reads everything that remains; `reserve_hint` pre-sizes the result
  // vector (see estimate_record_count for file-backed streams).
  [[nodiscard]] std::vector<LogRecord> read_all(std::size_t reserve_hint = 0);
  [[nodiscard]] std::uint64_t malformed_lines() const noexcept {
    return malformed_;
  }

 private:
  std::istream& in_;
  std::uint64_t malformed_ = 0;
};

// Estimated record count from the file size — a reserve hint, not a promise;
// 0 when the file cannot be stat'ed.
[[nodiscard]] std::size_t estimate_record_count(const std::string& path);

// Loads a whole log file into a Dataset, reserving capacity from the file
// size so the load does one allocation instead of log2(n) regrows. Throws
// std::runtime_error if the file cannot be opened; malformed lines are
// skipped and counted into `*malformed` when non-null.
[[nodiscard]] Dataset read_log_file(const std::string& path,
                                    std::uint64_t* malformed = nullptr);

// Hardened whole-file load. Permissive mode skips/quarantines bad lines and
// fills `*report`; strict mode throws std::runtime_error naming the first bad
// line. Also throws when the file cannot be opened, when a "#jsoncdn-log"
// header announces an unsupported version, or when the permissive error
// budget (options.max_malformed) is exceeded.
[[nodiscard]] Dataset ingest_log_file(const std::string& path,
                                      const IngestOptions& options,
                                      IngestReport* report = nullptr);

struct FileReadStats {
  std::uint64_t records = 0;    // well-formed records delivered to fn
  std::uint64_t malformed = 0;  // lines skipped
};

// Streams a log file through `fn` in chunks of up to `chunk_size` records
// without ever materializing the whole file — the bounded-memory ingest path
// for stream::StreamingStudy. The span passed to fn is only valid for the
// duration of the call. Throws std::runtime_error if the file cannot be
// opened.
FileReadStats for_each_record(
    const std::string& path, std::size_t chunk_size,
    const std::function<void(std::span<const LogRecord>)>& fn);

// Hardened chunked streaming ingest — for_each_record with the same
// strict/permissive/quarantine semantics as ingest_log_file. Returns the
// full ingest report.
IngestReport ingest_for_each_record(
    const std::string& path, std::size_t chunk_size,
    const IngestOptions& options,
    const std::function<void(std::span<const LogRecord>)>& fn);

}  // namespace jsoncdn::logs
