#include "http/mime.h"

#include <algorithm>
#include <cctype>

namespace jsoncdn::http {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::optional<MimeType> parse_mime(std::string_view header) {
  header = trim(header);
  // Split off parameters first.
  std::string_view essence = header;
  std::string_view params;
  if (const auto semi = header.find(';'); semi != std::string_view::npos) {
    essence = trim(header.substr(0, semi));
    params = header.substr(semi + 1);
  }
  const auto slash = essence.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto type = trim(essence.substr(0, slash));
  const auto subtype = trim(essence.substr(slash + 1));
  if (type.empty() || subtype.empty()) return std::nullopt;
  if (type.find('/') != std::string_view::npos ||
      subtype.find('/') != std::string_view::npos)
    return std::nullopt;

  MimeType out;
  out.type = to_lower(type);
  out.subtype = to_lower(subtype);
  while (!params.empty()) {
    std::string_view item = params;
    if (const auto semi = params.find(';'); semi != std::string_view::npos) {
      item = params.substr(0, semi);
      params = params.substr(semi + 1);
    } else {
      params = {};
    }
    item = trim(item);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      out.parameters.emplace_back(to_lower(item), "");
    } else {
      out.parameters.emplace_back(to_lower(trim(item.substr(0, eq))),
                                  std::string(trim(item.substr(eq + 1))));
    }
  }
  return out;
}

std::string_view to_string(ContentClass c) noexcept {
  switch (c) {
    case ContentClass::kJson: return "json";
    case ContentClass::kHtml: return "html";
    case ContentClass::kCss: return "css";
    case ContentClass::kJavascript: return "javascript";
    case ContentClass::kImage: return "image";
    case ContentClass::kVideo: return "video";
    case ContentClass::kFont: return "font";
    case ContentClass::kPlain: return "plain";
    case ContentClass::kBinary: return "binary";
    case ContentClass::kOther: return "other";
  }
  return "other";
}

ContentClass classify_content(const MimeType& mime) noexcept {
  const auto& t = mime.type;
  const auto& s = mime.subtype;
  const bool plus_json =
      s.size() > 5 && s.compare(s.size() - 5, 5, "+json") == 0;
  if ((t == "application" && (s == "json" || plus_json)) ||
      (t == "text" && s == "json"))
    return ContentClass::kJson;
  if (t == "text" && s == "html") return ContentClass::kHtml;
  if (t == "text" && s == "css") return ContentClass::kCss;
  if ((t == "application" || t == "text") &&
      (s == "javascript" || s == "x-javascript" || s == "ecmascript"))
    return ContentClass::kJavascript;
  if (t == "image") return ContentClass::kImage;
  if (t == "video") return ContentClass::kVideo;
  if (t == "font" || (t == "application" && s.rfind("font", 0) == 0))
    return ContentClass::kFont;
  if (t == "text" && s == "plain") return ContentClass::kPlain;
  if (t == "application" && s == "octet-stream") return ContentClass::kBinary;
  return ContentClass::kOther;
}

ContentClass classify_content(std::string_view header) noexcept {
  const auto mime = parse_mime(header);
  return mime ? classify_content(*mime) : ContentClass::kOther;
}

bool is_json(std::string_view header) noexcept {
  return classify_content(header) == ContentClass::kJson;
}

}  // namespace jsoncdn::http
