// The oracle conformance harness, exercised the way CI gates on it: a seed
// sweep against the paper-band invariants with thread and streaming
// differentials, plus the metamorphic relations the pipeline's determinism
// contracts make *exact* — disjoint interleaving, benign noise, and
// order-preserving URL renaming do not change labels or accuracies at all,
// so those comparisons are equality, not tolerance. Time shift is the one
// relation that cannot be bit-exact: (t + d) - (t0 + d) differs from t - t0
// by up to one rounding of the shifted doubles, so its labels must match
// exactly but detected periods get a 1e-6 relative allowance.
#include "oracle/conformance.h"

#include <gtest/gtest.h>

#include "core/ngram.h"
#include "core/periodicity.h"
#include "oracle/metamorphic.h"

namespace jsoncdn::oracle {
namespace {

// One small generated workload shared by the metamorphic tests (generation
// and detection are the expensive parts; the relations all hold on the same
// case).
const GeneratedCase& small_case() {
  static const GeneratedCase instance = [] {
    ConformanceConfig config;
    config.scale = 0.001;
    config.n_clients = 400;
    config.duration_seconds = 3600.0;
    return generate_case(11, config);
  }();
  return instance;
}

core::PeriodicityConfig threads1() {
  core::PeriodicityConfig config;
  config.threads = 1;
  return config;
}

// --- the sweep -------------------------------------------------------------

TEST(OracleConformance, SeedSweepStaysWithinPaperBands) {
  ConformanceConfig config;
  config.seeds = {1, 7};
  const auto report = run_conformance(config);
  ASSERT_EQ(report.cases.size(), 2u);
  for (const auto& result : report.cases) {
    EXPECT_TRUE(result.passed()) << render_case(result);
    EXPECT_TRUE(result.thread_invariant);
    EXPECT_TRUE(result.streaming_consistent);
    // The detector must be near-perfect on the clean workload, not merely
    // above the floor.
    EXPECT_GE(result.detector.f1(), 0.9) << render_case(result);
    EXPECT_GT(result.detector.true_positives, 10u);
    // Clustering must help the predictor, as in Table 3.
    EXPECT_GT(result.ngram_clustered.measured.accuracy_at.at(1),
              result.ngram_raw.measured.accuracy_at.at(1));
    // Every log record joined against a truth client.
    EXPECT_EQ(result.marginals.unmatched_requests, 0u);
  }
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.total_failures(), 0u);
}

TEST(OracleConformance, RenderingsNameEverySeed) {
  ConformanceReport report;
  CaseResult result;
  result.seed = 42;
  result.failures.push_back("detector F1 0.1 < 0.9");
  report.cases.push_back(result);
  const auto text = render_conformance(report);
  EXPECT_NE(text.find("seed 42"), std::string::npos);
  EXPECT_NE(text.find("[FAIL]"), std::string::npos);
  EXPECT_NE(text.find("detector F1 0.1 < 0.9"), std::string::npos);
  const auto table = render_detector_table(report);
  EXPECT_NE(table.find("| 42 |"), std::string::npos);
}

// --- metamorphic relations -------------------------------------------------

TEST(OracleMetamorphic, TimeShiftNeverFlipsDetectionLabels) {
  const auto& original = small_case();
  const auto base = detection_labels(
      core::analyze_periodicity(original.json, threads1()));
  ASSERT_FALSE(base.empty());

  // A large non-representable shift stresses the worst case: every shifted
  // timestamp re-rounds, so inter-arrival gaps move at the ulp level. Flow
  // coverage and periodic flags must be untouched; periods may re-round.
  const auto shifted = shift_time(original.json, 86400.5);
  const auto moved =
      detection_labels(core::analyze_periodicity(shifted, threads1()));
  ASSERT_EQ(base.size(), moved.size());
  EXPECT_TRUE(labels_equivalent(base, moved, 1e-6));
}

TEST(OracleMetamorphic, InterleavingDisjointTrafficPreservesLabels) {
  const auto& original = small_case();
  const auto base = detection_labels(
      core::analyze_periodicity(original.json, threads1()));

  const auto merged =
      merge_datasets(original.json, rename_disjoint(original.json, "twin"));
  ASSERT_EQ(merged.size(), 2 * original.json.size());
  const auto labels =
      detection_labels(core::analyze_periodicity(merged, threads1()));
  EXPECT_EQ(restrict_labels(labels, base), base);
}

TEST(OracleMetamorphic, BenignNoiseDoesNotFlipLabels) {
  const auto& original = small_case();
  const auto base = detection_labels(
      core::analyze_periodicity(original.json, threads1()));

  const auto noisy = inject_benign_noise(original.json, 500, 99);
  ASSERT_EQ(noisy.size(), original.json.size() + 500);
  const auto labels =
      detection_labels(core::analyze_periodicity(noisy, threads1()));
  EXPECT_EQ(restrict_labels(labels, base), base);
}

TEST(OracleMetamorphic, OrderPreservingRenameKeepsNgramAccuracy) {
  const auto& original = small_case();
  const auto renamed = rename_urls_order_preserving(original.json, "zz9.");

  for (const bool clustered : {false, true}) {
    core::NgramEvalConfig config;
    config.threads = 1;
    config.clustered = clustered;
    const auto before = core::evaluate_ngram(original.json, config);
    const auto after = core::evaluate_ngram(renamed, config);
    EXPECT_EQ(before.accuracy_at, after.accuracy_at)
        << "clustered=" << clustered;
    EXPECT_EQ(before.predictions, after.predictions);
    EXPECT_EQ(before.train_clients, after.train_clients);
  }
}

TEST(OracleMetamorphic, ThreadCountIsInvisibleInLabelsAndAccuracy) {
  const auto& original = small_case();
  auto config4 = threads1();
  config4.threads = 4;
  EXPECT_EQ(
      detection_labels(core::analyze_periodicity(original.json, threads1())),
      detection_labels(core::analyze_periodicity(original.json, config4)));

  core::NgramEvalConfig n1;
  n1.threads = 1;
  auto n4 = n1;
  n4.threads = 4;
  EXPECT_EQ(core::evaluate_ngram(original.json, n1).accuracy_at,
            core::evaluate_ngram(original.json, n4).accuracy_at);
}

// --- transform unit behaviour ---------------------------------------------

TEST(OracleMetamorphic, RenameDisjointTouchesEveryIdentity) {
  const auto& original = small_case();
  const auto renamed = rename_disjoint(original.json, "twin");
  ASSERT_EQ(renamed.size(), original.json.size());
  for (std::size_t i = 0; i < renamed.size(); ++i) {
    EXPECT_NE(renamed[i].client_id, original.json[i].client_id);
    EXPECT_NE(renamed[i].url, original.json[i].url);
    EXPECT_NE(renamed[i].domain, original.json[i].domain);
    EXPECT_EQ(renamed[i].timestamp, original.json[i].timestamp);
  }
}

TEST(OracleMetamorphic, RenameRejectsUrlsWithoutScheme) {
  std::vector<logs::LogRecord> records(1);
  records[0].url = "ftp://a.example/x";
  const logs::Dataset ds(std::move(records));
  EXPECT_THROW((void)rename_urls_order_preserving(ds, "zz."),
               std::invalid_argument);
}

TEST(OracleMetamorphic, DetectionLabelStripRealignsRenamedKeys) {
  core::PeriodicityReport report;
  core::ObjectPeriodicity object;
  object.url = "https://zz9.a.example/x";
  core::ClientPeriodRecord record;
  record.client = "c1";
  record.periodic = true;
  record.period_seconds = 30.0;
  object.clients.push_back(record);
  report.objects.push_back(object);

  const auto labels = detection_labels(report, "zz9.");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_TRUE(labels.contains({"https://a.example/x", "c1"}));
}

}  // namespace
}  // namespace jsoncdn::oracle
