#include "core/taxonomy.h"

#include <gtest/gtest.h>

namespace jsoncdn::core {
namespace {

constexpr std::string_view kMobileSafariUa =
    "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) "
    "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.0 Mobile/15E148 "
    "Safari/604.1";

logs::LogRecord base_record() {
  logs::LogRecord record;
  record.timestamp = 1.0;
  record.client_id = "abc";
  record.user_agent = std::string(kMobileSafariUa);
  record.method = http::Method::kGet;
  record.url = "https://api.news-001.example/v1/feed";
  record.domain = "api.news-001.example";
  record.content_type = "application/json";
  record.status = 200;
  record.response_bytes = 900;
  record.cache_status = logs::CacheStatus::kHit;
  return record;
}

TEST(Taxonomy, RequestTypeNamesAreStable) {
  EXPECT_EQ(to_string(RequestType::kDownload), "download");
  EXPECT_EQ(to_string(RequestType::kUpload), "upload");
  EXPECT_EQ(to_string(RequestType::kOther), "other");
}

TEST(Taxonomy, ClassifiesAllThreeAxesOfAJsonBrowserGet) {
  const auto cls = classify(base_record());
  EXPECT_TRUE(cls.is_json());
  EXPECT_EQ(cls.content, http::ContentClass::kJson);
  EXPECT_EQ(cls.device, http::DeviceType::kMobile);
  EXPECT_TRUE(cls.is_browser());
  EXPECT_EQ(cls.request, RequestType::kDownload);
  EXPECT_TRUE(cls.cacheable_config);
  EXPECT_EQ(cls.response_bytes, 900u);
}

TEST(Taxonomy, MapsMethodsOntoThePaperRequestTypes) {
  auto record = base_record();
  // §3.2: GET is download; POST (and other body-carrying methods) upload.
  for (const auto method : {http::Method::kGet, http::Method::kHead}) {
    record.method = method;
    EXPECT_EQ(classify(record).request, RequestType::kDownload);
  }
  for (const auto method :
       {http::Method::kPost, http::Method::kPut, http::Method::kPatch}) {
    record.method = method;
    EXPECT_EQ(classify(record).request, RequestType::kUpload);
  }
  for (const auto method : {http::Method::kDelete, http::Method::kOptions}) {
    record.method = method;
    EXPECT_EQ(classify(record).request, RequestType::kOther);
  }
}

TEST(Taxonomy, CacheableConfigReflectsCacheStatus) {
  auto record = base_record();
  record.cache_status = logs::CacheStatus::kNotCacheable;
  EXPECT_FALSE(classify(record).cacheable_config);
  // Everything else — including STALE serves and origin ERRORs — means the
  // customer's config allowed caching.
  for (const auto status :
       {logs::CacheStatus::kHit, logs::CacheStatus::kMiss,
        logs::CacheStatus::kRefreshHit, logs::CacheStatus::kStale,
        logs::CacheStatus::kError}) {
    record.cache_status = status;
    EXPECT_TRUE(classify(record).cacheable_config)
        << logs::to_string(status);
  }
}

TEST(Taxonomy, MissingUserAgentClassifiesAsUnknown) {
  auto record = base_record();
  record.user_agent.clear();
  const auto cls = classify(record);
  EXPECT_EQ(cls.device, http::DeviceType::kUnknown);
  EXPECT_EQ(cls.agent, http::AgentKind::kUnknown);
  EXPECT_FALSE(cls.is_browser());
}

TEST(Taxonomy, NonJsonContentIsNotJson) {
  auto record = base_record();
  record.content_type = "text/html; charset=utf-8";
  EXPECT_FALSE(classify(record).is_json());
}

TEST(Taxonomy, IsAPureFunctionOfTheRecord) {
  const auto record = base_record();
  const auto a = classify(record);
  const auto b = classify(record);
  EXPECT_EQ(a.content, b.content);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.agent, b.agent);
  EXPECT_EQ(a.request, b.request);
  EXPECT_EQ(a.cacheable_config, b.cacheable_config);
  EXPECT_EQ(a.response_bytes, b.response_bytes);
}

}  // namespace
}  // namespace jsoncdn::core
