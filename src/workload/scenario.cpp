#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jsoncdn::workload {

namespace {

std::size_t scaled(double base, double scale, std::size_t min_value) {
  return std::max(min_value,
                  static_cast<std::size_t>(std::llround(base * scale)));
}

}  // namespace

GeneratorConfig short_term_scenario(double scale, std::uint64_t seed) {
  if (scale <= 0.0)
    throw std::invalid_argument("short_term_scenario: scale <= 0");
  GeneratorConfig config;
  config.seed = seed;
  config.duration_seconds = 600.0;  // the paper's 10-minute capture
  // ~5 K domains at scale 1 (11 industries * ~455).
  config.catalog.domains_per_industry = scaled(455.0, scale, 2);
  // ~25 M logs at scale 1. A client contributes ~16 requests in 10 minutes
  // (one-ish session, assets included), so ~1.6 M clients at scale 1.
  config.n_clients = scaled(1'600'000.0, scale, 500);
  config.mean_sessions_per_client = 1.2;
  return config;
}

GeneratorConfig long_term_scenario(double scale, std::uint64_t seed) {
  if (scale <= 0.0)
    throw std::invalid_argument("long_term_scenario: scale <= 0");
  GeneratorConfig config;
  config.seed = seed;
  config.duration_seconds = 24.0 * 3600.0;  // the paper's 24-hour capture
  // ~170 domains at scale 1: 11 industries * ~15. Domain count shrinks with
  // sqrt(scale) so flows stay dense enough for the >=10-clients-per-object
  // filter even at small scales.
  config.catalog.domains_per_industry = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(15.0 * std::sqrt(scale))));
  // ~10 M logs at scale 1; a day-long client contributes ~90 requests
  // (four app sessions with assets, plus machine-to-machine flows).
  config.n_clients = scaled(112'000.0, scale, 1600);
  config.mean_sessions_per_client = 4.0;
  // Long-window captures are where machine-to-machine traffic shows up.
  config.periodic.mobile_app = 0.03;
  config.periodic.embedded = 0.50;
  config.periodic.library = 0.30;
  return config;
}

}  // namespace jsoncdn::workload
