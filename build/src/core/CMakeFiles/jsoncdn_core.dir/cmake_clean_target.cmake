file(REMOVE_RECURSE
  "libjsoncdn_core.a"
)
