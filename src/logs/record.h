// The edge-server request log record — the paper's unit of data (§3.1).
//
// Fields mirror what the authors collect from Akamai edge logs: request time,
// anonymized client IP, select request/response headers (user-agent, mime
// type, URL), HTTP method/status, byte counts, and object caching
// information. The entire analysis layer consumes only this schema.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "http/method.h"

namespace jsoncdn::logs {

// Cache outcome recorded by the edge server for one request.
enum class CacheStatus {
  kHit,           // served from edge cache
  kMiss,          // cacheable but not present; fetched from origin and stored
  kRefreshHit,    // stale copy revalidated with origin (304) and re-served
  kNotCacheable,  // customer config forbids caching; tunneled to origin
  kStale,         // expired copy served because the origin failed (RFC 5861)
  kError,         // origin failure no resilience mechanism could absorb (5xx)
  kShed,          // rejected by edge overload protection (load shed, 503)
  kThrottled,     // rejected by per-client rate limiting (429)
};

// Number of CacheStatus values. The serialization coverage test
// static_asserts against this so adding an enumerator without extending
// to_string/parse_cache_status fails the build, not the field. The .jlog v2
// chunk format packs this enum in 3 bits, so the count must stay <= 8.
inline constexpr std::size_t kCacheStatusCount = 8;
// Every status, in declaration order — lets tests and renderers iterate
// exhaustively.
[[nodiscard]] const std::array<CacheStatus, kCacheStatusCount>&
all_cache_statuses() noexcept;

[[nodiscard]] std::string_view to_string(CacheStatus s) noexcept;
// Returns true and sets `out` on success.
[[nodiscard]] bool parse_cache_status(std::string_view token,
                                      CacheStatus& out) noexcept;

struct LogRecord {
  double timestamp = 0.0;          // seconds since dataset epoch
  std::string client_id;           // salted hash of client IP (hex), "" = n/a
  std::string user_agent;          // raw UA header; "" when absent
  http::Method method = http::Method::kGet;
  std::string url;                 // full normalized request URL
  std::string domain;              // request host (CDN customer property)
  std::string content_type;        // response Content-Type header value
  int status = 200;
  std::uint64_t response_bytes = 0;
  std::uint64_t request_bytes = 0; // upload body size
  CacheStatus cache_status = CacheStatus::kNotCacheable;
  std::uint32_t edge_id = 0;       // serving edge server

  // Flow keys. An object flow is all requests for one URL; a client-object
  // flow is one client's requests for one URL, where a client is the
  // (user-agent, anonymized IP) pair — exactly the paper's definitions.
  [[nodiscard]] const std::string& object_key() const noexcept { return url; }
  [[nodiscard]] std::string client_key() const {
    return client_id + "|" + user_agent;
  }
  // Allocation-free variant for hot loops: rebuilds the key into a caller
  // buffer whose capacity amortizes to zero across records. (The columnar
  // LogTable goes further and interns the pair once per distinct client.)
  void client_key_into(std::string& out) const {
    out.clear();
    out.reserve(client_id.size() + 1 + user_agent.size());
    out.append(client_id);
    out.push_back('|');
    out.append(user_agent);
  }
};

}  // namespace jsoncdn::logs
