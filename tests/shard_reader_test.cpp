// End-to-end tests of the `.jlog` v2 store: write/read round trips against
// the v1 image, magic-based format detection, zone-map pruning semantics,
// and adversarial robustness (truncation at every prefix class, bit flips
// anywhere in the file).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/record.h"
#include "logs/table.h"
#include "shard/format.h"
#include "shard/reader.h"
#include "shard/synth.h"
#include "shard/writer.h"

namespace {

using jsoncdn::logs::LogTable;
using jsoncdn::shard::ScanPredicate;
using jsoncdn::shard::ShardReader;
using jsoncdn::shard::ShardWriter;
using jsoncdn::shard::ShardWriterOptions;
using jsoncdn::shard::SynthFields;
using jsoncdn::shard::SynthOptions;

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("jsoncdn_shard_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

SynthOptions small_workload(std::uint64_t records) {
  SynthOptions options;
  options.records = records;
  options.seed = 7;
  options.clients = 500;
  options.urls = 200;
  options.domains = 16;
  return options;
}

// Builds the reference table by streaming the same synthetic workload
// through LogTable::append_fields — the rows every store must reproduce.
LogTable reference_table(const SynthOptions& options) {
  LogTable table;
  jsoncdn::shard::synth_records(options, [&](const SynthFields& f) {
    table.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                        f.url, f.domain, f.content_type, f.status,
                        f.response_bytes, f.request_bytes, f.cache_status,
                        f.edge_id);
  });
  return table;
}

void write_v2(const std::string& path, const SynthOptions& options,
              std::uint32_t chunk_rows) {
  ShardWriterOptions writer_options;
  writer_options.chunk_rows = chunk_rows;
  ShardWriter writer(path, writer_options);
  jsoncdn::shard::synth_records(options, [&](const SynthFields& f) {
    writer.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                         f.url, f.domain, f.content_type, f.status,
                         f.response_bytes, f.request_bytes, f.cache_status,
                         f.edge_id);
  });
  const auto stats = writer.finalize();
  EXPECT_EQ(stats.rows, options.records);
}

void expect_tables_equal(const LogTable& a, const LogTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.timestamp(i), b.timestamp(i)) << "row " << i;
    ASSERT_EQ(a.client_id(i), b.client_id(i)) << "row " << i;
    ASSERT_EQ(a.user_agent(i), b.user_agent(i)) << "row " << i;
    ASSERT_EQ(a.method(i), b.method(i)) << "row " << i;
    ASSERT_EQ(a.url(i), b.url(i)) << "row " << i;
    ASSERT_EQ(a.domain(i), b.domain(i)) << "row " << i;
    ASSERT_EQ(a.content_type(i), b.content_type(i)) << "row " << i;
    ASSERT_EQ(a.status(i), b.status(i)) << "row " << i;
    ASSERT_EQ(a.response_bytes(i), b.response_bytes(i)) << "row " << i;
    ASSERT_EQ(a.request_bytes(i), b.request_bytes(i)) << "row " << i;
    ASSERT_EQ(a.cache_status(i), b.cache_status(i)) << "row " << i;
    ASSERT_EQ(a.edge_id(i), b.edge_id(i)) << "row " << i;
    ASSERT_EQ(a.client_key(i), b.client_key(i)) << "row " << i;
  }
}

TEST_F(TempDir, V2RoundTripMatchesReferenceAcrossChunkGeometries) {
  const auto options = small_workload(5000);
  const LogTable reference = reference_table(options);
  // 64-row chunks force many chunks; 8192 leaves the last chunk short;
  // 5000 gives exactly one full chunk; 1 is the degenerate geometry.
  for (const std::uint32_t chunk_rows : {64u, 8192u, 5000u, 1u}) {
    const auto file = path("store.jlog");
    write_v2(file, options, chunk_rows);
    ShardReader reader(file);
    EXPECT_EQ(reader.row_count(), options.records);
    EXPECT_EQ(reader.chunk_target_rows(), chunk_rows);
    jsoncdn::logs::IngestReport report;
    const LogTable loaded = reader.read_all(&report);
    EXPECT_EQ(report.records, options.records);
    EXPECT_TRUE(report.header_seen);
    expect_tables_equal(reference, loaded);
  }
}

TEST_F(TempDir, V2MatchesV1RowForRow) {
  const auto options = small_workload(3000);
  const LogTable reference = reference_table(options);
  const auto v1 = path("image.jlog");
  const auto v2 = path("store.jlog");
  jsoncdn::logs::write_jlog(v1, reference);
  write_v2(v2, options, 256);

  const LogTable from_v1 = jsoncdn::logs::read_jlog(v1);
  const LogTable from_v2 = ShardReader(v2).read_all();
  expect_tables_equal(from_v1, from_v2);

  // The whole point of v2: same rows, smaller file.
  EXPECT_LT(std::filesystem::file_size(v2), std::filesystem::file_size(v1));
}

TEST_F(TempDir, DetectLogFormatDispatchesOnMagic) {
  using jsoncdn::logs::LogFormat;
  const auto options = small_workload(100);
  const LogTable reference = reference_table(options);

  const auto v1 = path("image.jlog");
  const auto v2 = path("store.jlog");
  const auto text = path("log.tsv");
  jsoncdn::logs::write_jlog(v1, reference);
  write_v2(v2, options, 64);
  {
    std::ofstream os(text);
    jsoncdn::logs::LogWriter writer(os);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      writer.write(reference.record(static_cast<std::uint32_t>(i)));
    }
  }

  EXPECT_EQ(jsoncdn::logs::detect_log_format(v1), LogFormat::kJlogV1);
  EXPECT_EQ(jsoncdn::logs::detect_log_format(v2), LogFormat::kJlogV2);
  EXPECT_EQ(jsoncdn::logs::detect_log_format(text), LogFormat::kText);
  EXPECT_EQ(jsoncdn::logs::detect_log_format(path("missing")),
            LogFormat::kText);

  // load_table_auto must produce identical rows for both binary encodings.
  for (const auto& file : {v1, v2}) {
    jsoncdn::logs::IngestReport report;
    const LogTable loaded =
        jsoncdn::shard::load_table_auto(file, {}, &report);
    EXPECT_EQ(report.records, reference.size());
    expect_tables_equal(reference, loaded);
  }
  // Text is lossy in the timestamp (LogWriter prints six fixed decimals),
  // so compare it with a tolerance and everything else exactly.
  {
    jsoncdn::logs::IngestReport report;
    const LogTable loaded =
        jsoncdn::shard::load_table_auto(text, {}, &report);
    EXPECT_EQ(report.records, reference.size());
    ASSERT_EQ(loaded.size(), reference.size());
    for (std::uint32_t i = 0; i < reference.size(); ++i) {
      EXPECT_NEAR(loaded.timestamp(i), reference.timestamp(i), 5e-7)
          << "row " << i;
      EXPECT_EQ(loaded.url(i), reference.url(i)) << "row " << i;
      EXPECT_EQ(loaded.client_id(i), reference.client_id(i)) << "row " << i;
      EXPECT_EQ(loaded.response_bytes(i), reference.response_bytes(i))
          << "row " << i;
    }
  }
}

TEST_F(TempDir, ScanPrunesTimeWindowsButSelectsIdenticalRows) {
  auto options = small_workload(8000);
  options.duration = 8000.0;  // 1s per record, time-ordered
  const auto file = path("store.jlog");
  write_v2(file, options, 500);  // 16 chunks of 500s each

  ShardReader reader(file);
  ScanPredicate window;
  window.min_time = 0.0;
  window.max_time = 2000.0;  // first quarter

  std::vector<double> pruned_rows;
  const auto pruned_stats = reader.scan(
      window, [&](const LogTable& chunk, std::span<const std::uint32_t> sel) {
        for (const auto row : sel) pruned_rows.push_back(chunk.timestamp(row));
      });
  // ~12 of 16 chunks lie wholly outside the quarter window.
  EXPECT_GE(pruned_stats.chunks_pruned, pruned_stats.chunks_total / 2);
  EXPECT_EQ(pruned_stats.chunks_pruned + pruned_stats.chunks_scanned,
            pruned_stats.chunks_total);

  ScanPredicate unpruned = window;
  unpruned.use_zone_maps = false;
  std::vector<double> full_rows;
  const auto full_stats = reader.scan(
      unpruned,
      [&](const LogTable& chunk, std::span<const std::uint32_t> sel) {
        for (const auto row : sel) full_rows.push_back(chunk.timestamp(row));
      });
  EXPECT_EQ(full_stats.chunks_pruned, 0u);
  EXPECT_EQ(full_stats.chunks_scanned, full_stats.chunks_total);
  // Pruning is conservative: identical selected rows either way.
  EXPECT_EQ(pruned_rows, full_rows);
  EXPECT_EQ(pruned_stats.rows_selected, full_stats.rows_selected);
  for (const auto t : pruned_rows) {
    EXPECT_GE(t, window.min_time);
    EXPECT_LE(t, window.max_time);
  }
}

TEST_F(TempDir, ScanPrunesBySymbolRange) {
  const auto options = small_workload(4000);
  const auto file = path("store.jlog");
  write_v2(file, options, 250);

  ShardReader reader(file);
  // A URL that never occurs prunes everything via the row filter; an
  // out-of-range symbol can even prune every chunk.
  ScanPredicate nothing;
  nothing.url_symbols = {0xfffffff0u};
  std::uint64_t calls = 0;
  const auto stats = reader.scan(
      nothing,
      [&](const LogTable&, std::span<const std::uint32_t>) { ++calls; });
  EXPECT_EQ(stats.rows_selected, 0u);
  EXPECT_EQ(stats.chunks_pruned, stats.chunks_total);
  EXPECT_EQ(calls, 0u);

  // Every row of a known URL is found, and matches a full-scan count.
  const auto& dicts = reader.dictionaries();
  const auto target = dicts.urls().find("/api/v1/object/000003");
  ASSERT_NE(target, jsoncdn::logs::StringInterner::kNoSymbol);
  ScanPredicate by_url;
  by_url.url_symbols = {target};
  std::uint64_t selected = 0;
  reader.scan(by_url, [&](const LogTable& chunk,
                          std::span<const std::uint32_t> sel) {
    for (const auto row : sel) {
      EXPECT_EQ(chunk.url_sym(row), target);
      ++selected;
    }
  });
  std::uint64_t expected = 0;
  const LogTable all = ShardReader(file).read_all();
  for (std::uint32_t i = 0; i < all.size(); ++i) {
    if (all.url(i) == "/api/v1/object/000003") ++expected;
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(selected, expected);
}

TEST_F(TempDir, RejectsTruncationAtEveryRegion) {
  const auto options = small_workload(600);
  const auto file = path("store.jlog");
  write_v2(file, options, 100);

  std::ifstream is(file, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());

  // Truncation points spanning every structural region: inside the magic,
  // inside chunk payloads, inside the footer, and inside the trailer.
  const std::size_t points[] = {0,
                                4,
                                8,
                                bytes.size() / 4,
                                bytes.size() / 2,
                                bytes.size() - 30,
                                bytes.size() - 24,
                                bytes.size() - 8,
                                bytes.size() - 1};
  for (const auto keep : points) {
    const auto trunc = path("trunc.jlog");
    std::ofstream os(trunc, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(keep));
    os.close();
    EXPECT_THROW(
        {
          ShardReader reader(trunc);
          static_cast<void>(reader.read_all());
        },
        std::runtime_error)
        << "accepted a " << keep << "-byte prefix of " << bytes.size();
  }
}

TEST_F(TempDir, RejectsEveryBitFlipInSampledPositions) {
  const auto options = small_workload(400);
  const auto file = path("store.jlog");
  write_v2(file, options, 64);

  std::ifstream is(file, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());

  // Every byte of a small file would be slow under sanitizers; a stride
  // still lands flips in the magic, payloads, footer, and trailer, plus the
  // exact boundaries.
  std::vector<std::size_t> positions = {0, 7, 8, bytes.size() - 24,
                                        bytes.size() - 16, bytes.size() - 8,
                                        bytes.size() - 1};
  for (std::size_t p = 9; p < bytes.size(); p += 97) positions.push_back(p);

  for (const auto pos : positions) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    const auto flipped = path("flip.jlog");
    std::ofstream os(flipped, std::ios::binary | std::ios::trunc);
    os.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    os.close();
    EXPECT_THROW(
        {
          ShardReader reader(flipped);
          // Structural checks may pass (a flip inside a payload body is
          // only caught by its chunk checksum) — decoding must catch it.
          static_cast<void>(reader.read_all());
        },
        std::runtime_error)
        << "flip at byte " << pos << " of " << bytes.size() << " accepted";
  }
}

TEST_F(TempDir, WriterMemoryStaysBoundedByChunk) {
  // The pending table never holds more than chunk_rows rows.
  const auto file = path("store.jlog");
  ShardWriterOptions options;
  options.chunk_rows = 128;
  ShardWriter writer(file, options);
  const auto workload = small_workload(1000);
  std::uint64_t appended = 0;
  jsoncdn::shard::synth_records(workload, [&](const SynthFields& f) {
    writer.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                         f.url, f.domain, f.content_type, f.status,
                         f.response_bytes, f.request_bytes, f.cache_status,
                         f.edge_id);
    ++appended;
    EXPECT_EQ(writer.rows_appended(), appended);
  });
  const auto stats = writer.finalize();
  EXPECT_EQ(stats.rows, 1000u);
  EXPECT_EQ(stats.chunks, (1000u + 127u) / 128u);
  EXPECT_THROW(writer.finalize(), std::runtime_error);
}

}  // namespace
