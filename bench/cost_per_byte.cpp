// Section 4 provisioning analysis: the CPU cost-per-byte premium of JSON
// traffic. The paper observes that JSON responses shrank ~28% while request
// counts grew, so per-request CPU dominates and operators must provision for
// request rate, not just egress. This bench prices a short-term trace under
// the serving-cost model and compares cost-per-byte across content classes
// and across the 2016/2019 size regimes.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "core/cost.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.006;
  bench::print_header("Section 4 provisioning",
                      "CPU cost-per-byte by content class");

  workload::WorkloadGenerator generator(
      workload::short_term_scenario(scale, 1234));
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);

  const auto report = core::analyze_costs(dataset);
  std::fputs(core::render_costs(report).c_str(), stdout);
  std::printf("\n");

  const auto* json = report.find(http::ContentClass::kJson);
  const auto* html = report.find(http::ContentClass::kHtml);
  if (json != nullptr && html != nullptr) {
    bench::compare("JSON / HTML cost-per-KB ratio", 3.0,
                   json->cost_per_kilobyte() / html->cost_per_kilobyte());
    bench::compare("JSON CPU share of its cost", 0.5, json->cpu_share());
    bench::compare("HTML CPU share of its cost", 0.3, html->cpu_share());
  }

  // The 2016-size regime: same traffic, JSON bodies ~39% larger
  // (1/0.72), i.e. before the paper's observed slimming.
  auto old_config = workload::short_term_scenario(scale, 1234);
  old_config.catalog.json_size_log_shift = 0.3285;  // ln(1/0.72)
  workload::WorkloadGenerator old_generator(old_config);
  const auto old_workload = old_generator.generate();
  cdn::CdnNetwork old_network(old_generator.catalog().objects(), {});
  const auto old_dataset = old_network.run(old_workload.events);
  const auto old_report = core::analyze_costs(old_dataset);
  const auto* old_json = old_report.find(http::ContentClass::kJson);
  if (json != nullptr && old_json != nullptr) {
    std::printf("\n");
    bench::note("2016-size regime (JSON bodies ~39% larger):");
    std::printf("  JSON cost-per-KB: 2016 sizes %.3f -> 2019 sizes %.3f "
                "(x%.2f)\n",
                old_json->cost_per_kilobyte(), json->cost_per_kilobyte(),
                json->cost_per_kilobyte() / old_json->cost_per_kilobyte());
    bench::note("shrinking bodies raise cost-per-byte: the paper's "
                "provisioning point.");
  }
  return 0;
}
