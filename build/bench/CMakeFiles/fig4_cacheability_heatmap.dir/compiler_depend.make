# Empty compiler generated dependencies file for fig4_cacheability_heatmap.
# This may be replaced when dependencies are built.
