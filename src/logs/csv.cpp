#include "logs/csv.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "http/url.h"

namespace jsoncdn::logs {

namespace {

constexpr std::string_view kHeader =
    "#jsoncdn-log-v1\ttime\tclient\tua\tmethod\turl\tdomain\tmime\tstatus\t"
    "resp_bytes\treq_bytes\tcache\tedge";
constexpr std::size_t kColumns = 12;

// Escapes field separators; reuses percent-encoding for the three bytes that
// would break the line format.
std::string escape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      case '%': out += "%25"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(std::string_view field) {
  return http::url_decode(field);
}

template <typename T>
bool parse_number(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  // from_chars for double is not universally available; strtod via string.
  const std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size() && !tmp.empty();
}

}  // namespace

std::string_view log_header() noexcept { return kHeader; }

std::string to_line(const LogRecord& r) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << r.timestamp << '\t' << escape(r.client_id) << '\t'
      << escape(r.user_agent) << '\t' << http::to_string(r.method) << '\t'
      << escape(r.url) << '\t' << escape(r.domain) << '\t'
      << escape(r.content_type) << '\t' << r.status << '\t'
      << r.response_bytes << '\t' << r.request_bytes << '\t'
      << to_string(r.cache_status) << '\t' << r.edge_id;
  return out.str();
}

std::optional<LogRecord> from_line(std::string_view line) {
  // Tolerate CRLF line endings (files written on Windows or fetched over
  // HTTP): getline leaves the '\r' on, and it would corrupt the last column.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string_view> cols;
  cols.reserve(kColumns);
  while (true) {
    const auto tab = line.find('\t');
    if (tab == std::string_view::npos) {
      cols.push_back(line);
      break;
    }
    cols.push_back(line.substr(0, tab));
    line = line.substr(tab + 1);
  }
  if (cols.size() != kColumns) return std::nullopt;

  LogRecord r;
  if (!parse_double(cols[0], r.timestamp)) return std::nullopt;
  r.client_id = unescape(cols[1]);
  r.user_agent = unescape(cols[2]);
  const auto method = http::parse_method(cols[3]);
  if (!method) return std::nullopt;
  r.method = *method;
  r.url = unescape(cols[4]);
  r.domain = unescape(cols[5]);
  r.content_type = unescape(cols[6]);
  if (!parse_number(cols[7], r.status)) return std::nullopt;
  if (!parse_number(cols[8], r.response_bytes)) return std::nullopt;
  if (!parse_number(cols[9], r.request_bytes)) return std::nullopt;
  if (!parse_cache_status(cols[10], r.cache_status)) return std::nullopt;
  if (!parse_number(cols[11], r.edge_id)) return std::nullopt;
  return r;
}

LogWriter::LogWriter(std::ostream& out) : out_(out) {
  out_ << kHeader << '\n';
}

void LogWriter::write(const LogRecord& record) {
  out_ << to_line(record) << '\n';
  ++written_;
}

LogReader::LogReader(std::istream& in) : in_(in) {}

std::vector<LogRecord> LogReader::read_all(std::size_t reserve_hint) {
  std::vector<LogRecord> out;
  out.reserve(reserve_hint);
  std::string line;
  while (std::getline(in_, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (view.empty() || view.front() == '#') continue;
    if (auto rec = from_line(view)) {
      out.push_back(std::move(*rec));
    } else {
      ++malformed_;
    }
  }
  return out;
}

std::size_t estimate_record_count(const std::string& path) {
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  if (ec) return 0;
  // to_line emits ~100-200 bytes per record for realistic URLs and UAs; a
  // conservative divisor over-reserves slightly rather than reallocating.
  constexpr std::uintmax_t kEstimatedBytesPerRecord = 96;
  return static_cast<std::size_t>(bytes / kEstimatedBytesPerRecord);
}

Dataset read_log_file(const std::string& path, std::uint64_t* malformed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  LogReader reader(in);
  Dataset dataset(reader.read_all(estimate_record_count(path)));
  if (malformed) *malformed = reader.malformed_lines();
  return dataset;
}

FileReadStats for_each_record(
    const std::string& path, std::size_t chunk_size,
    const std::function<void(std::span<const LogRecord>)>& fn) {
  if (chunk_size == 0) chunk_size = 1;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  FileReadStats stats;
  std::vector<LogRecord> chunk;
  chunk.reserve(chunk_size);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (view.empty() || view.front() == '#') continue;
    if (auto rec = from_line(view)) {
      chunk.push_back(std::move(*rec));
      if (chunk.size() == chunk_size) {
        fn(std::span<const LogRecord>(chunk));
        stats.records += chunk.size();
        chunk.clear();
      }
    } else {
      ++stats.malformed;
    }
  }
  if (!chunk.empty()) {
    fn(std::span<const LogRecord>(chunk));
    stats.records += chunk.size();
  }
  return stats;
}

}  // namespace jsoncdn::logs
