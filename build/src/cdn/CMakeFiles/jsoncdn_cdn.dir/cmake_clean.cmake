file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_cdn.dir/cache.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/cache.cpp.o.d"
  "CMakeFiles/jsoncdn_cdn.dir/edge.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/edge.cpp.o.d"
  "CMakeFiles/jsoncdn_cdn.dir/metrics.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/metrics.cpp.o.d"
  "CMakeFiles/jsoncdn_cdn.dir/network.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/network.cpp.o.d"
  "CMakeFiles/jsoncdn_cdn.dir/origin.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/origin.cpp.o.d"
  "CMakeFiles/jsoncdn_cdn.dir/prioritizer.cpp.o"
  "CMakeFiles/jsoncdn_cdn.dir/prioritizer.cpp.o.d"
  "libjsoncdn_cdn.a"
  "libjsoncdn_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
