file(REMOVE_RECURSE
  "libjsoncdn_logs.a"
)
