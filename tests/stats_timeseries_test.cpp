#include "stats/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace jsoncdn::stats {
namespace {

TEST(BinEvents, CountsPerInterval) {
  const std::vector<double> times = {0.1, 0.9, 1.5, 2.0, 2.99};
  const auto bins = bin_events(times, 0.0, 3.0, 1.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
  EXPECT_DOUBLE_EQ(bins[1], 1.0);
  EXPECT_DOUBLE_EQ(bins[2], 2.0);
}

TEST(BinEvents, EventsOutsideWindowIgnored) {
  const std::vector<double> times = {-1.0, 0.5, 5.0};
  const auto bins = bin_events(times, 0.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(std::accumulate(bins.begin(), bins.end(), 0.0), 1.0);
}

TEST(BinEvents, FractionalBinWidth) {
  const std::vector<double> times = {0.0, 0.4, 0.6};
  const auto bins = bin_events(times, 0.0, 1.0, 0.5);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
  EXPECT_DOUBLE_EQ(bins[1], 1.0);
}

TEST(BinEvents, RejectsBadArguments) {
  const std::vector<double> times = {1.0};
  EXPECT_THROW((void)bin_events(times, 0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)bin_events(times, 2.0, 1.0, 0.5), std::invalid_argument);
}

TEST(InterarrivalGaps, ComputesDifferences) {
  const std::vector<double> times = {1.0, 3.0, 6.0, 10.0};
  const auto gaps = interarrival_gaps(times);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 2.0);
  EXPECT_DOUBLE_EQ(gaps[1], 3.0);
  EXPECT_DOUBLE_EQ(gaps[2], 4.0);
}

TEST(InterarrivalGaps, ShortSequencesYieldEmpty) {
  EXPECT_TRUE(interarrival_gaps({}).empty());
  EXPECT_TRUE(interarrival_gaps({{5.0}}).empty());
}

TEST(InterarrivalGaps, RejectsDescendingTimes) {
  const std::vector<double> times = {2.0, 1.0};
  EXPECT_THROW((void)interarrival_gaps(times), std::invalid_argument);
}

TEST(TimesFromGaps, RoundTripsWithInterarrivalGaps) {
  const std::vector<double> times = {0.5, 1.5, 4.0, 4.25};
  const auto gaps = interarrival_gaps(times);
  const auto rebuilt = times_from_gaps(times.front(), gaps);
  ASSERT_EQ(rebuilt.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(rebuilt[i], times[i], 1e-12);
  }
}

TEST(PermuteGaps, PreservesStartEndAndGapMultiset) {
  const std::vector<double> times = {0.0, 1.0, 3.0, 6.0, 10.0};
  Rng rng(42);
  const auto permuted = permute_gaps(times, rng);
  ASSERT_EQ(permuted.size(), times.size());
  EXPECT_DOUBLE_EQ(permuted.front(), times.front());
  EXPECT_NEAR(permuted.back(), times.back(), 1e-12);  // total span preserved
  auto original_gaps = interarrival_gaps(times);
  auto new_gaps = interarrival_gaps(permuted);
  std::sort(original_gaps.begin(), original_gaps.end());
  std::sort(new_gaps.begin(), new_gaps.end());
  for (std::size_t i = 0; i < original_gaps.size(); ++i) {
    EXPECT_NEAR(new_gaps[i], original_gaps[i], 1e-12);
  }
}

TEST(PermuteGaps, ActuallyShufflesLongSequences) {
  std::vector<double> times;
  for (int i = 0; i < 50; ++i) {
    times.push_back(times.empty() ? 0.0 : times.back() + 1.0 + 0.1 * i);
  }
  Rng rng(7);
  const auto permuted = permute_gaps(times, rng);
  EXPECT_NE(permuted, times);
}

TEST(PermuteGaps, RejectsTooShortInput) {
  Rng rng(1);
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)permute_gaps(one, rng), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::stats
