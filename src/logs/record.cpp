#include "logs/record.h"

namespace jsoncdn::logs {

std::string_view to_string(CacheStatus s) noexcept {
  switch (s) {
    case CacheStatus::kHit: return "HIT";
    case CacheStatus::kMiss: return "MISS";
    case CacheStatus::kRefreshHit: return "REFRESH";
    case CacheStatus::kNotCacheable: return "NOCACHE";
  }
  return "NOCACHE";
}

bool parse_cache_status(std::string_view token, CacheStatus& out) noexcept {
  if (token == "HIT") {
    out = CacheStatus::kHit;
    return true;
  }
  if (token == "MISS") {
    out = CacheStatus::kMiss;
    return true;
  }
  if (token == "REFRESH") {
    out = CacheStatus::kRefreshHit;
    return true;
  }
  if (token == "NOCACHE") {
    out = CacheStatus::kNotCacheable;
    return true;
  }
  return false;
}

}  // namespace jsoncdn::logs
